//! The memory bus: physical storage, region decoding, peripheral dispatch
//! and MPU enforcement.
//!
//! Every data access and instruction fetch made by the CPU (and by the OS on
//! the application's behalf) goes through [`Bus`].  The bus decodes the
//! address into an MSP430FR5969 region, dispatches peripheral-register
//! accesses to the MPU and timer models, and consults the MPU for FRAM /
//! InfoMem accesses.  Accesses the MPU denies are reported as
//! [`BusFault`]s, which the CPU converts into application faults.

use crate::mpu::{ExtendedMpu, Mpu, MpuRegisterError, RegionMpu};
use crate::timer::Timer;
use amulet_core::addr::{Addr, AddrRange};
use amulet_core::layout::PlatformSpec;
use amulet_core::mpu_plan::MpuConfig;
use amulet_core::perm::AccessKind;
use std::fmt;

/// Which architectural region an address decodes to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Region {
    /// Memory-mapped peripheral registers.
    Peripherals,
    /// Bootstrap-loader ROM (read-only).
    BootstrapLoader,
    /// Information memory (FRAM).
    InfoMem,
    /// SRAM.
    Sram,
    /// Main FRAM (code + data).
    Fram,
    /// Interrupt vector table.
    InterruptVectors,
    /// A hole in the memory map.
    Unmapped,
}

/// Why a bus access failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusFaultCause {
    /// The MPU denied the access.
    MpuViolation,
    /// The extended ("advanced") MPU denied the access.
    ExtendedMpuViolation,
    /// The address decodes to a hole in the memory map.
    Unmapped,
    /// A write targeted read-only memory (bootstrap loader).
    ReadOnly,
    /// An MPU register write violated the password/lock protocol.
    MpuRegisterProtocol(MpuRegisterError),
    /// A word access at an odd address (the MSP430 requires aligned words).
    Misaligned,
}

/// A failed bus access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusFault {
    /// The faulting address.
    pub addr: Addr,
    /// What kind of access was attempted.
    pub access: AccessKind,
    /// Why it failed.
    pub cause: BusFaultCause,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {:#06x} failed: {:?}",
            self.access, self.addr, self.cause
        )
    }
}

impl std::error::Error for BusFault {}

/// Counters the bus maintains for the evaluation and the profiler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Data reads performed.
    pub reads: u64,
    /// Data writes performed.
    pub writes: u64,
    /// Instruction-fetch permission checks performed.
    pub exec_checks: u64,
    /// Writes that landed in FRAM (more energy-expensive on real hardware).
    pub fram_writes: u64,
    /// Peripheral-register writes (MPU/timer configuration traffic).
    pub peripheral_writes: u64,
    /// Accesses denied by the MPU or extended MPU.
    pub denied: u64,
}

/// The system bus.
#[derive(Clone)]
pub struct Bus {
    platform: PlatformSpec,
    mem: Box<[u8]>,
    /// The FR5969-style segmented MPU (the active backend on segmented
    /// platforms).
    pub mpu: Mpu,
    /// The Tock/Cortex-M-style region MPU (the active backend on
    /// region-MPU platforms).
    pub region_mpu: RegionMpu,
    /// The hypothetical advanced MPU used by the §5 ablation.
    pub ext_mpu: ExtendedMpu,
    /// The benchmark timer.
    pub timer: Timer,
    /// Access counters.
    pub stats: BusStats,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus")
            .field("platform", &"PlatformSpec")
            .field("mpu", &self.mpu)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Bus {
    /// Creates a bus for the given platform with zeroed memory.  The MPU
    /// backend that polices FRAM/InfoMem accesses is chosen by the
    /// platform's [`amulet_core::platform::MpuModel`].
    pub fn new(platform: PlatformSpec) -> Self {
        let (mpu, region_mpu) = Self::mpu_backends(&platform);
        Bus {
            platform,
            mem: vec![0u8; 0x1_0000].into_boxed_slice(),
            mpu,
            region_mpu,
            ext_mpu: ExtendedMpu::default(),
            timer: Timer::new(),
            stats: BusStats::default(),
        }
    }

    /// Builds both MPU backends in their power-on (disabled) state for a
    /// platform — the single backend-selection rule shared by
    /// [`Bus::new`] and [`Bus::reset`].
    fn mpu_backends(platform: &PlatformSpec) -> (Mpu, RegionMpu) {
        let mpu = Mpu::new(platform.fram, platform.info_mem);
        let region_slots = if platform.mpu.is_region_based() {
            platform.mpu.main_segments()
        } else {
            0
        };
        let region_mpu = RegionMpu::new(
            region_slots,
            platform.fram,
            platform.info_mem,
            platform.sram,
        );
        (mpu, region_mpu)
    }

    /// Creates a bus for the MSP430FR5969.
    pub fn msp430fr5969() -> Self {
        Bus::new(PlatformSpec::msp430fr5969())
    }

    /// Returns the bus to its power-on state **in place**: memory is zeroed
    /// (the 64 KiB allocation is reused), the MPU backends return to their
    /// disabled reset values, the timer stops and the access counters
    /// clear.  Lets one bus be reused across many simulation runs.
    pub fn reset(&mut self) {
        self.mem.fill(0);
        let (mpu, region_mpu) = Self::mpu_backends(&self.platform);
        self.mpu = mpu;
        self.region_mpu = region_mpu;
        self.ext_mpu = ExtendedMpu::default();
        self.timer = Timer::new();
        self.stats = BusStats::default();
    }

    /// The platform this bus models.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Decodes an address into its architectural region.
    pub fn region(&self, addr: Addr) -> Region {
        let p = &self.platform;
        if p.peripherals.contains(addr) {
            Region::Peripherals
        } else if p.bootstrap_loader.contains(addr) {
            Region::BootstrapLoader
        } else if p.info_mem.contains(addr) {
            Region::InfoMem
        } else if p.sram.contains(addr) {
            Region::Sram
        } else if p.fram.contains(addr) {
            Region::Fram
        } else if p.interrupt_vectors.contains(addr) {
            Region::InterruptVectors
        } else {
            Region::Unmapped
        }
    }

    /// The range of main FRAM.
    pub fn fram_range(&self) -> AddrRange {
        self.platform.fram
    }

    /// Installs an MPU configuration by performing the same memory-mapped
    /// register writes the OS's context-switch code issues on hardware:
    /// boundaries/access-bits/control for the segmented part, or
    /// select/base/limit per region plus control for the region part.
    pub fn install_mpu_config(&mut self, config: &MpuConfig) -> Result<(), BusFault> {
        match config {
            MpuConfig::Segmented(regs) => {
                self.write(crate::mpu::MPUSEGB1, 2, regs.mpusegb1)?;
                self.write(crate::mpu::MPUSEGB2, 2, regs.mpusegb2)?;
                self.write(crate::mpu::MPUSAM, 2, regs.mpusam)?;
                self.write(crate::mpu::MPUCTL0, 2, regs.mpuctl0)?;
            }
            MpuConfig::Region(regs) => {
                // Privileged path: the register block rejects CPU-side
                // stores, so the OS programs it directly (the write
                // sequence and slot-count cap live in `apply_config`).
                // Count the same stats a `Bus::write` per register would.
                self.region_mpu.apply_config(regs);
                self.stats.writes += regs.write_count() as u64;
                self.stats.peripheral_writes += regs.write_count() as u64;
            }
        }
        Ok(())
    }

    fn check_protection(&mut self, addr: Addr, access: AccessKind) -> Result<(), BusFault> {
        if self.ext_mpu.enabled {
            if !self.ext_mpu.check(addr, access) {
                self.stats.denied += 1;
                return Err(BusFault {
                    addr,
                    access,
                    cause: BusFaultCause::ExtendedMpuViolation,
                });
            }
            return Ok(());
        }
        let decision = if self.platform.mpu.is_region_based() {
            self.region_mpu.check(addr, access)
        } else {
            self.mpu.check(addr, access)
        };
        if decision.permits() {
            Ok(())
        } else {
            self.stats.denied += 1;
            Err(BusFault {
                addr,
                access,
                cause: BusFaultCause::MpuViolation,
            })
        }
    }

    /// Reads `size` bytes (1 or 2) at `addr` as a little-endian value,
    /// enforcing region and MPU rules.
    pub fn read(&mut self, addr: Addr, size: u32) -> Result<u16, BusFault> {
        debug_assert!(size == 1 || size == 2);
        if size == 2 && !addr.is_multiple_of(2) {
            return Err(BusFault {
                addr,
                access: AccessKind::Read,
                cause: BusFaultCause::Misaligned,
            });
        }
        self.stats.reads += 1;
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Read,
                cause: BusFaultCause::Unmapped,
            }),
            Region::Peripherals => Ok(self.read_peripheral(addr)),
            Region::Fram | Region::InfoMem | Region::Sram => {
                self.check_protection(addr, AccessKind::Read)?;
                Ok(self.read_raw(addr, size))
            }
            Region::BootstrapLoader | Region::InterruptVectors => Ok(self.read_raw(addr, size)),
        }
    }

    /// Writes `size` bytes (1 or 2) at `addr`, enforcing region and MPU
    /// rules.
    pub fn write(&mut self, addr: Addr, size: u32, value: u16) -> Result<(), BusFault> {
        debug_assert!(size == 1 || size == 2);
        if size == 2 && !addr.is_multiple_of(2) {
            return Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::Misaligned,
            });
        }
        self.stats.writes += 1;
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::Unmapped,
            }),
            Region::BootstrapLoader => Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::ReadOnly,
            }),
            Region::Peripherals => {
                self.stats.peripheral_writes += 1;
                self.write_peripheral(addr, value)
            }
            Region::Fram | Region::InfoMem => {
                self.check_protection(addr, AccessKind::Write)?;
                self.stats.fram_writes += 1;
                self.write_raw(addr, size, value);
                Ok(())
            }
            Region::Sram => {
                self.check_protection(addr, AccessKind::Write)?;
                self.write_raw(addr, size, value);
                Ok(())
            }
            Region::InterruptVectors => {
                self.write_raw(addr, size, value);
                Ok(())
            }
        }
    }

    /// Checks whether an instruction fetch at `addr` is permitted.
    pub fn check_execute(&mut self, addr: Addr) -> Result<(), BusFault> {
        self.stats.exec_checks += 1;
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Execute,
                cause: BusFaultCause::Unmapped,
            }),
            Region::Fram | Region::InfoMem | Region::Sram => {
                // SRAM is outside the segmented MPU's jurisdiction (one of
                // the reasons the paper still needs software checks) but
                // inside a region MPU's; `check_protection` routes to
                // whichever backend the platform has.
                self.check_protection(addr, AccessKind::Execute)
            }
            // Peripherals etc. are outside every backend's jurisdiction:
            // fetches from them are architecturally possible.
            _ => Ok(()),
        }
    }

    fn read_peripheral(&self, addr: Addr) -> u16 {
        if Mpu::owns_register(addr) {
            self.mpu.read_register(addr)
        } else if RegionMpu::owns_register(addr) {
            self.region_mpu.read_register(addr)
        } else if Timer::owns_register(addr) {
            self.timer.read_register(addr)
        } else {
            self.read_raw(addr & !1, 2)
        }
    }

    fn write_peripheral(&mut self, addr: Addr, value: u16) -> Result<(), BusFault> {
        if Mpu::owns_register(addr) {
            self.mpu.write_register(addr, value).map_err(|e| BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::MpuRegisterProtocol(e),
            })
        } else if RegionMpu::owns_register(addr) {
            // The region MPU's register block is privileged-only (Cortex-M
            // PPB style): stores executed by application code fault, and
            // only the OS's `install_mpu_config` path programs it.  Without
            // this, an app on a region platform — compiled with no
            // data-pointer checks — could simply disable the MPU.
            Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::MpuRegisterProtocol(MpuRegisterError::Privileged),
            })
        } else if Timer::owns_register(addr) {
            self.timer.write_register(addr, value);
            Ok(())
        } else {
            self.write_raw(addr & !1, 2, value);
            Ok(())
        }
    }

    /// Raw read with no protection checks (loader / host tooling only).
    pub fn read_raw(&self, addr: Addr, size: u32) -> u16 {
        let lo = self.mem[addr as usize] as u16;
        if size == 1 {
            lo
        } else {
            let hi = self.mem[(addr as usize + 1) & 0xFFFF] as u16;
            lo | (hi << 8)
        }
    }

    /// Raw write with no protection checks (loader / host tooling only).
    pub fn write_raw(&mut self, addr: Addr, size: u32, value: u16) {
        self.mem[addr as usize] = (value & 0xFF) as u8;
        if size == 2 {
            self.mem[(addr as usize + 1) & 0xFFFF] = (value >> 8) as u8;
        }
    }

    /// Copies a byte slice into memory with no protection checks (used by the
    /// firmware loader).
    pub fn load_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.mem[(addr as usize + i) & 0xFFFF] = *b;
        }
    }

    /// Copies bytes out of memory with no protection checks (host tooling).
    pub fn dump_bytes(&self, range: AddrRange) -> Vec<u8> {
        (range.start..range.end)
            .map(|a| self.mem[a as usize])
            .collect()
    }

    /// Fills a range with a value, bypassing protection (used by the OS's
    /// `bzero`-on-switch ablation).
    pub fn fill(&mut self, range: AddrRange, value: u8) {
        for a in range.start..range.end {
            self.mem[a as usize] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::{MPUCTL0, MPUSAM, MPUSEGB1, MPUSEGB2};
    use crate::timer::TIMER_CONTROL;
    use crate::timer::TIMER_COUNTER;

    fn bus() -> Bus {
        Bus::msp430fr5969()
    }

    #[test]
    fn region_decoding_matches_datasheet() {
        let b = bus();
        assert_eq!(b.region(0x0200), Region::Peripherals);
        assert_eq!(b.region(0x1000), Region::BootstrapLoader);
        assert_eq!(b.region(0x1800), Region::InfoMem);
        assert_eq!(b.region(0x1C00), Region::Sram);
        assert_eq!(b.region(0x2400), Region::Unmapped);
        assert_eq!(b.region(0x4400), Region::Fram);
        assert_eq!(b.region(0xFF7F), Region::Fram);
        assert_eq!(b.region(0xFF80), Region::InterruptVectors);
    }

    #[test]
    fn sram_and_fram_read_write_roundtrip() {
        let mut b = bus();
        b.write(0x1C00, 2, 0xBEEF).unwrap();
        assert_eq!(b.read(0x1C00, 2).unwrap(), 0xBEEF);
        b.write(0x4400, 2, 0x1234).unwrap();
        assert_eq!(b.read(0x4400, 2).unwrap(), 0x1234);
        b.write(0x4403, 1, 0xAB).unwrap();
        assert_eq!(b.read(0x4403, 1).unwrap(), 0xAB);
    }

    #[test]
    fn little_endian_byte_order() {
        let mut b = bus();
        b.write(0x1C10, 2, 0x1234).unwrap();
        assert_eq!(b.read(0x1C10, 1).unwrap(), 0x34);
        assert_eq!(b.read(0x1C11, 1).unwrap(), 0x12);
    }

    #[test]
    fn unmapped_and_readonly_accesses_fault() {
        let mut b = bus();
        assert_eq!(
            b.read(0x3000, 2).unwrap_err().cause,
            BusFaultCause::Unmapped
        );
        assert_eq!(
            b.write(0x1000, 2, 1).unwrap_err().cause,
            BusFaultCause::ReadOnly
        );
        assert_eq!(
            b.write(0x4401, 2, 1).unwrap_err().cause,
            BusFaultCause::Misaligned
        );
    }

    #[test]
    fn mpu_registers_are_reachable_through_the_bus() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        b.write(MPUSAM, 2, 0x0124).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();
        assert!(b.mpu.enabled);
        assert_eq!(b.mpu.boundary1, 0x6000);
        assert_eq!(b.mpu.boundary2, 0x8000);
        // Bad password surfaces as a protocol fault.
        let err = b.write(MPUCTL0, 2, 0x0001).unwrap_err();
        assert!(matches!(err.cause, BusFaultCause::MpuRegisterProtocol(_)));
    }

    #[test]
    fn enabled_mpu_blocks_fram_but_not_sram() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        // seg1 X, seg2 RW, seg3 none.
        b.write(MPUSAM, 2, 0x0024).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();

        // Write into seg2: fine.
        b.write(0x7000, 2, 1).unwrap();
        // Write into seg1 (execute-only): MPU violation.
        assert_eq!(
            b.write(0x5000, 2, 1).unwrap_err().cause,
            BusFaultCause::MpuViolation
        );
        // Read from seg3 (no access): MPU violation.
        assert_eq!(
            b.read(0x9000, 2).unwrap_err().cause,
            BusFaultCause::MpuViolation
        );
        // SRAM is not covered by the MPU: still writable.
        b.write(0x1C00, 2, 7).unwrap();
        // Execute check in seg1 passes, in seg3 fails.
        assert!(b.check_execute(0x5000).is_ok());
        assert!(b.check_execute(0x9000).is_err());
        assert!(b.stats.denied >= 3);
    }

    #[test]
    fn timer_is_reachable_through_the_bus() {
        let mut b = bus();
        b.write(TIMER_CONTROL, 2, 0x0020).unwrap();
        b.timer.tick(100);
        let v = b.read(TIMER_COUNTER, 2).unwrap();
        assert_eq!(v, 96, "quantised to 16 cycles");
    }

    #[test]
    fn loader_bypasses_protection() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        b.write(MPUSAM, 2, 0x0000).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();
        b.load_bytes(0x9000, &[1, 2, 3, 4]);
        assert_eq!(
            b.dump_bytes(AddrRange::new(0x9000, 0x9004)),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn fill_zeroes_a_region() {
        let mut b = bus();
        b.load_bytes(0x1C00, &[9; 16]);
        b.fill(AddrRange::new(0x1C00, 0x1C10), 0);
        assert!(b
            .dump_bytes(AddrRange::new(0x1C00, 0x1C10))
            .iter()
            .all(|&x| x == 0));
    }

    #[test]
    fn stats_count_fram_writes_separately() {
        let mut b = bus();
        b.write(0x1C00, 2, 1).unwrap();
        b.write(0x4400, 2, 1).unwrap();
        b.write(0x4402, 2, 1).unwrap();
        assert_eq!(b.stats.writes, 3);
        assert_eq!(b.stats.fram_writes, 2);
    }

    #[test]
    fn extended_mpu_takes_precedence_when_enabled() {
        let mut b = bus();
        b.ext_mpu.enabled = true;
        b.ext_mpu.segments = vec![(AddrRange::new(0x5000, 0x6000), amulet_core::perm::Perm::RW)];
        assert!(b.write(0x5800, 2, 1).is_ok());
        assert_eq!(
            b.write(0x7000, 2, 1).unwrap_err().cause,
            BusFaultCause::ExtendedMpuViolation
        );
    }
}
