//! The dense decoded-instruction store.
//!
//! Instruction fetch is the single hottest operation in the simulator:
//! every simulated instruction performs one lookup.  The original
//! implementation kept decoded instructions in a `BTreeMap<Addr, Instr>`,
//! paying an O(log n) pointer-chasing search per fetch.  [`InstrStore`]
//! replaces it with a flat word-indexed table: the 64 KiB address space
//! holds at most 32 K instruction words (every [`Instr`] occupies a whole
//! number of 2-byte words, so instructions start only at even addresses),
//! and slot `addr >> 1` holds the instruction decoded at `addr`.  Fetch is
//! a single masked index into a fixed-size table — O(1), cache-friendly,
//! no allocation, and no bounds check survives to the generated code.
//!
//! Each slot also carries an [`InstrMeta`]: the instruction's encoded
//! size, base cycle cost and whether it touches data memory, precomputed
//! at insert time so the execute loop reads them with the same load that
//! fetched the instruction instead of re-deriving them from three `match`
//! expressions per step.
//!
//! The table is allocated lazily (an empty store owns no memory) and
//! clones with one `memcpy`, which is what lets
//! [`Device::load_firmware`](crate::device::Device::load_firmware) install
//! a prebuilt image cheaply and the fleet simulator reuse decoded firmware
//! across thousands of devices.

use crate::isa::{AluOp, CheckBranch, Instr, Reg, SuperOp};
use amulet_core::addr::Addr;
use std::fmt;

/// Size of the simulated address space in bytes.
const ADDR_SPACE_BYTES: usize = 0x1_0000;
/// Number of instruction slots: one per 2-byte word of address space.
pub(crate) const SLOT_COUNT: usize = ADDR_SPACE_BYTES / 2;

/// Packed per-instruction metadata, precomputed when the instruction is
/// inserted.  `0` marks an empty slot (impossible for a real instruction:
/// every instruction is at least one word, so the size field is non-zero).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstrMeta(u16);

impl InstrMeta {
    /// The empty-slot sentinel.
    const EMPTY: InstrMeta = InstrMeta(0);

    /// Computes the metadata for an instruction.
    fn of(instr: &Instr) -> InstrMeta {
        let size = instr.size_bytes() as u16; // 2 or 4; up to 8 for elided pairs
        let cycles = instr.base_cycles() as u16; // ≤ 17 today
        let touches = instr.touches_data_memory() as u16;
        debug_assert!(
            size <= 0xF && cycles <= 0x3F,
            "instruction metadata does not fit its packed fields \
             (size {size} in 4 bits, cycles {cycles} in 6 bits)"
        );
        InstrMeta(size | (cycles << 4) | (touches << 10))
    }

    /// Encoded size of the instruction in bytes.
    #[inline]
    pub fn size_bytes(self) -> u32 {
        (self.0 & 0xF) as u32
    }

    /// Base cycle cost of the instruction.
    #[inline]
    pub fn base_cycles(self) -> u64 {
        ((self.0 >> 4) & 0x3F) as u64
    }

    /// Whether the instruction reads or writes data memory.
    #[inline]
    pub fn touches_data_memory(self) -> bool {
        self.0 & (1 << 10) != 0
    }
}

/// One slot of the table: an instruction plus its precomputed metadata.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    meta: InstrMeta,
    instr: Instr,
}

impl Slot {
    const EMPTY: Slot = Slot {
        meta: InstrMeta::EMPTY,
        instr: Instr::Nop,
    };

    /// Whether the slot holds no instruction.
    #[inline(always)]
    pub(crate) fn is_empty(&self) -> bool {
        self.meta == InstrMeta::EMPTY
    }

    /// The decoded instruction (meaningless when [`Slot::is_empty`]).
    #[inline(always)]
    pub(crate) fn instr(&self) -> Instr {
        self.instr
    }

    /// The precomputed metadata (meaningless when [`Slot::is_empty`]).
    #[inline(always)]
    pub(crate) fn meta(&self) -> InstrMeta {
        self.meta
    }
}

/// A dense, word-indexed store of decoded instructions.
///
/// Addresses are word-aligned: the ISA guarantees every instruction is a
/// whole number of 16-bit words, so only even addresses can hold an
/// instruction and slot `addr >> 1` is a perfect index.  Odd addresses
/// never hold instructions ([`InstrStore::get`] returns `None` without
/// touching the table).
#[derive(Clone, Default)]
pub struct InstrStore {
    /// `slots[addr >> 1]` holds the instruction decoded at `addr`.
    /// `None` (no allocation) until the first insert; the fixed array size
    /// lets the masked hot-path index compile without a bounds check.
    slots: Option<Box<[Slot; SLOT_COUNT]>>,
    /// Number of occupied slots.
    count: usize,
    /// The superinstruction overlay built by [`InstrStore::fuse`]:
    /// `fused[addr >> 1]` is `1 + index` into `super_ops` when `addr` is
    /// the *head* of a fused sequence, `0` otherwise.  Interior component
    /// slots keep their entries in `slots`, so a branch into the middle of
    /// a sequence executes the tail unfused.  Derived state: never
    /// serialized, never compared (see the manual [`PartialEq`]), and
    /// invalidated by [`InstrStore::insert`].
    fused: Option<Box<[u16; SLOT_COUNT]>>,
    /// The fused sequences the overlay indexes into.
    super_ops: Vec<SuperOp>,
}

/// Fusion is derived, reconstructible state: two stores are equal when
/// they hold the same instructions, whether or not either has been fused.
/// This is what keeps a decoded-then-fused image equal to the image it was
/// encoded from and lets fused/unfused firmware compare `Eq`.
impl PartialEq for InstrStore {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.slots == other.slots
    }
}

impl Eq for InstrStore {}

impl InstrStore {
    /// Creates an empty store.  No memory is allocated until the first
    /// [`InstrStore::insert`].
    pub fn new() -> Self {
        InstrStore {
            slots: None,
            count: 0,
            fused: None,
            super_ops: Vec::new(),
        }
    }

    /// Number of instructions in the store.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the store holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts an instruction at `addr`, returning the instruction the
    /// slot previously held (if any).
    ///
    /// # Panics
    ///
    /// Panics when `addr` is odd (the ISA word-aligns every instruction)
    /// or outside the 64 KiB address space.
    pub fn insert(&mut self, addr: Addr, instr: Instr) -> Option<Instr> {
        assert!(
            addr.is_multiple_of(2) && (addr as usize) < ADDR_SPACE_BYTES,
            "instruction address {addr:#06x} is misaligned or out of range"
        );
        let slots = self.slots.get_or_insert_with(|| {
            vec![Slot::EMPTY; SLOT_COUNT]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!("slot table has the fixed size"))
        });
        let slot = &mut slots[(addr >> 1) as usize];
        let prev = (slot.meta != InstrMeta::EMPTY).then_some(slot.instr);
        *slot = Slot {
            meta: InstrMeta::of(&instr),
            instr,
        };
        if prev.is_none() {
            self.count += 1;
        }
        // The fusion overlay is derived from the slots; any mutation
        // invalidates it (re-derive with `fuse` once the store settles).
        self.fused = None;
        self.super_ops.clear();
        prev
    }

    /// The raw slot table, resolved once per execute block so the per-step
    /// fetch is a single masked index (see [`crate::cpu::Cpu::run_block`]).
    #[inline(always)]
    pub(crate) fn table(&self) -> Option<&[Slot; SLOT_COUNT]> {
        self.slots.as_deref()
    }

    /// The fusion overlay and superop table, resolved once per execute
    /// block — `None` until [`InstrStore::fuse`] found something to fuse.
    #[inline(always)]
    pub(crate) fn fused(&self) -> Option<(&[u16; SLOT_COUNT], &[SuperOp])> {
        self.fused
            .as_deref()
            .map(|t| (t, self.super_ops.as_slice()))
    }

    /// Whether [`InstrStore::fuse`] has built a (non-empty) overlay.
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// The fused sequence headed at `addr`, if any (diagnostics and
    /// tests; the executor uses the resolved overlay directly).
    pub fn super_op_at(&self, addr: Addr) -> Option<&SuperOp> {
        if !addr.is_multiple_of(2) || (addr as usize) >= ADDR_SPACE_BYTES {
            return None;
        }
        let index = self.fused.as_ref()?[(addr >> 1) as usize];
        (index != 0).then(|| &self.super_ops[(index - 1) as usize])
    }

    /// Builds the superinstruction overlay: a single greedy peephole walk
    /// in address order, matching the longest fusable pattern at each
    /// instruction and skipping the consumed components.  Sequences never
    /// overlap; component slots stay in place (branches into a sequence
    /// interior execute the tail unfused); no safety scan is needed
    /// because fusion — unlike elision — removes nothing.
    ///
    /// Candidate patterns are the stereotyped shapes the AFT compiler
    /// emits, justified by the `hotpath` pair-frequency profile: the
    /// lower/upper double bound check, the single bound check, the
    /// add-then-check loop tail, the `Push FP; Mov FP ← SP` prologue, the
    /// `Mov SP ← FP; Pop FP` epilogue head, and adjacent [`Instr::Elided`]
    /// placeholder pairs left by check elision.
    ///
    /// Idempotent and cheap to re-run; [`InstrStore::insert`] invalidates
    /// the overlay, so fuse once the store has settled.
    pub fn fuse(&mut self) -> FuseReport {
        let items: Vec<(Addr, Instr)> = self.iter().map(|(a, i)| (a, *i)).collect();
        let mut report = FuseReport::default();
        let mut ops: Vec<SuperOp> = Vec::new();
        let mut heads: Vec<(Addr, u16)> = Vec::new();
        let mut i = 0;
        while i < items.len() {
            match match_super(&items[i..]) {
                Some((op, len)) => {
                    report.count(&op);
                    ops.push(op);
                    heads.push((items[i].0, ops.len() as u16));
                    i += len;
                }
                None => i += 1,
            }
        }
        if ops.is_empty() {
            self.fused = None;
            self.super_ops = Vec::new();
            return report;
        }
        let mut overlay: Box<[u16; SLOT_COUNT]> = vec![0u16; SLOT_COUNT]
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("overlay has the fixed size"));
        for (addr, index) in heads {
            overlay[(addr >> 1) as usize] = index;
        }
        self.fused = Some(overlay);
        self.super_ops = ops;
        report
    }

    /// The occupied slot at `addr`, if any — the one lookup behind
    /// [`InstrStore::fetch`] and [`InstrStore::get`].  O(1): one masked
    /// index, no bounds check; odd or out-of-range addresses hold no
    /// instruction.
    #[inline(always)]
    fn slot(&self, addr: Addr) -> Option<&Slot> {
        if !addr.is_multiple_of(2) || (addr as usize) >= ADDR_SPACE_BYTES {
            return None;
        }
        let slot = &self.slots.as_ref()?[((addr >> 1) as usize) & (SLOT_COUNT - 1)];
        (!slot.is_empty()).then_some(slot)
    }

    /// The instruction at `addr` together with its precomputed metadata.
    #[inline(always)]
    pub fn fetch(&self, addr: Addr) -> Option<(Instr, InstrMeta)> {
        self.slot(addr).map(|s| (s.instr, s.meta))
    }

    /// The instruction decoded at `addr`, if any.
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<&Instr> {
        self.slot(addr).map(|s| &s.instr)
    }

    /// Whether an instruction is decoded at `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.get(addr).is_some()
    }

    /// Iterates `(address, instruction)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &Instr)> {
        self.slots
            .iter()
            .flat_map(|slots| slots.iter().enumerate())
            .filter(|(_, slot)| slot.meta != InstrMeta::EMPTY)
            .map(|(i, slot)| ((i as Addr) << 1, &slot.instr))
    }

    /// Iterates `(address, instruction)` pairs with addresses inside
    /// `range`, in address order — the [`BTreeMap::range`]-shaped helper
    /// the firmware validator and tests use.
    ///
    /// [`BTreeMap::range`]: std::collections::BTreeMap::range
    pub fn range(&self, range: std::ops::Range<Addr>) -> impl Iterator<Item = (Addr, &Instr)> {
        let (start, end) = match &self.slots {
            Some(_) => {
                let start = ((range.start + 1) >> 1) as usize;
                let end = (range.end.div_ceil(2) as usize).min(SLOT_COUNT);
                (start.min(end), end)
            }
            None => (0, 0),
        };
        self.slots
            .iter()
            .flat_map(move |slots| slots[start..end].iter().enumerate())
            .filter(|(_, slot)| slot.meta != InstrMeta::EMPTY)
            .map(move |(i, slot)| (((start + i) as Addr) << 1, &slot.instr))
    }

    /// The lowest-addressed instruction, if any.
    pub fn first(&self) -> Option<(Addr, &Instr)> {
        self.iter().next()
    }

    /// The highest-addressed instruction, if any.
    pub fn last(&self) -> Option<(Addr, &Instr)> {
        let slots = self.slots.as_ref()?;
        let i = slots.iter().rposition(|s| s.meta != InstrMeta::EMPTY)?;
        Some(((i as Addr) << 1, &slots[i].instr))
    }
}

/// What one [`InstrStore::fuse`] pass matched, by pattern.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseReport {
    /// Fused sequences built (overlay heads).
    pub sequences: usize,
    /// Component instructions covered by those sequences.
    pub fused_instructions: usize,
    /// Single bound checks ([`SuperOp::Check`]).
    pub checks: usize,
    /// Lower+upper double bound checks ([`SuperOp::Check2`]).
    pub double_checks: usize,
    /// Add-then-check loop tails ([`SuperOp::AddCheck`]).
    pub add_checks: usize,
    /// Call prologues ([`SuperOp::PushMov`]).
    pub prologues: usize,
    /// Epilogue heads ([`SuperOp::MovPop`]).
    pub epilogues: usize,
    /// Adjacent elided-placeholder pairs ([`SuperOp::ElidedPair`]).
    pub elided_pairs: usize,
}

impl FuseReport {
    fn count(&mut self, op: &SuperOp) {
        self.sequences += 1;
        self.fused_instructions += op.components() as usize;
        match op {
            SuperOp::Check(_) => self.checks += 1,
            SuperOp::Check2(..) => self.double_checks += 1,
            SuperOp::AddCheck { .. } => self.add_checks += 1,
            SuperOp::PushMov { .. } => self.prologues += 1,
            SuperOp::MovPop { .. } => self.epilogues += 1,
            SuperOp::ElidedPair { .. } => self.elided_pairs += 1,
        }
    }
}

/// The `CmpImm` + `Jcc` pair at the head of `items`, when the two are
/// exactly adjacent and the compared register is not `PC` (the fused
/// executor defers `set_pc` to sequence end, so components must not read
/// `PC` as a general register).
fn check_pair(items: &[(Addr, Instr)]) -> Option<CheckBranch> {
    match (items.first()?, items.get(1)?) {
        (&(a0, Instr::CmpImm { a, imm }), &(a1, Instr::Jcc { cond, target }))
            if a0 + 4 == a1 && a != Reg::PC =>
        {
            Some(CheckBranch {
                a,
                imm,
                cond,
                target,
            })
        }
        _ => None,
    }
}

/// The longest fusable pattern at the head of `items`, with the number of
/// component instructions it consumes.  Every component must be exactly
/// adjacent to its predecessor (no gaps — the executor derives component
/// addresses from the head), and no component may name `PC` as an operand
/// (the executor updates `PC` once per sequence, not per component).
fn match_super(items: &[(Addr, Instr)]) -> Option<(SuperOp, usize)> {
    let &(addr, head) = items.first()?;
    match head {
        Instr::CmpImm { .. } => {
            let first = check_pair(items)?;
            if items.len() >= 4 && items[1].0 + 4 == items[2].0 {
                if let Some(second) = check_pair(&items[2..]) {
                    return Some((SuperOp::Check2(first, second), 4));
                }
            }
            Some((SuperOp::Check(first), 2))
        }
        Instr::AluImm {
            op: AluOp::Add,
            dst,
            imm,
        } if dst != Reg::PC => {
            if items.len() >= 3 && addr + 4 == items[1].0 {
                let check = check_pair(&items[1..])?;
                return Some((SuperOp::AddCheck { dst, imm, check }, 3));
            }
            None
        }
        Instr::Push { src } if src != Reg::PC => match items.get(1) {
            Some(&(a1, Instr::Mov { dst, src: msrc }))
                if addr + 2 == a1 && dst != Reg::PC && msrc != Reg::PC =>
            {
                Some((
                    SuperOp::PushMov {
                        push: src,
                        dst,
                        src: msrc,
                    },
                    2,
                ))
            }
            _ => None,
        },
        Instr::Mov { dst, src } if dst != Reg::PC && src != Reg::PC => match items.get(1) {
            Some(&(a1, Instr::Pop { dst: pop })) if addr + 2 == a1 && pop != Reg::PC => {
                Some((SuperOp::MovPop { dst, src, pop }, 2))
            }
            _ => None,
        },
        Instr::Elided {
            words: w1,
            cycles: c1,
        } => match items.get(1) {
            Some(&(
                a1,
                Instr::Elided {
                    words: w2,
                    cycles: c2,
                },
            )) if addr + 2 * u32::from(w1) == a1 => {
                Some((SuperOp::ElidedPair { w1, c1, w2, c2 }, 2))
            }
            _ => None,
        },
        _ => None,
    }
}

impl fmt::Debug for InstrStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstrStore")
            .field("count", &self.count)
            .field("span", &self.first().map(|(a, _)| a))
            .finish_non_exhaustive()
    }
}

impl FromIterator<(Addr, Instr)> for InstrStore {
    fn from_iter<T: IntoIterator<Item = (Addr, Instr)>>(iter: T) -> Self {
        let mut store = InstrStore::new();
        for (addr, instr) in iter {
            store.insert(addr, instr);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Reg, Width};

    #[test]
    fn empty_store_allocates_nothing_and_finds_nothing() {
        let s = InstrStore::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.get(0x4400).is_none());
        assert!(s.fetch(0x4400).is_none());
        assert!(s.first().is_none());
        assert!(s.last().is_none());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.range(0..0x1_0000).count(), 0);
    }

    #[test]
    fn insert_get_roundtrip_and_replacement() {
        let mut s = InstrStore::new();
        assert!(s.insert(0x4400, Instr::Nop).is_none());
        assert!(s.insert(0x4402, Instr::Ret).is_none());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0x4400), Some(&Instr::Nop));
        assert_eq!(s.get(0x4402), Some(&Instr::Ret));
        assert!(s.get(0x4404).is_none());
        // Replacing a slot returns the old instruction and keeps the count.
        assert_eq!(s.insert(0x4400, Instr::Halt), Some(Instr::Nop));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fetch_returns_precomputed_metadata() {
        let mut s = InstrStore::new();
        let load = Instr::Load {
            dst: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        };
        s.insert(0x4400, load);
        s.insert(0x4404, Instr::Ret);
        let (i, m) = s.fetch(0x4400).unwrap();
        assert_eq!(i, load);
        assert_eq!(m.size_bytes(), load.size_bytes());
        assert_eq!(m.base_cycles(), load.base_cycles());
        assert!(m.touches_data_memory());
        let (_, m) = s.fetch(0x4404).unwrap();
        assert_eq!(m.size_bytes(), 2);
        assert_eq!(m.base_cycles(), Instr::Ret.base_cycles());
        assert!(!m.touches_data_memory());
    }

    #[test]
    fn odd_and_out_of_range_addresses_hold_no_instructions() {
        let mut s = InstrStore::new();
        s.insert(0x4400, Instr::Nop);
        assert!(s.get(0x4401).is_none());
        assert!(!s.contains(0x4401));
        assert!(s.fetch(0x4401).is_none());
        assert!(s.get(0x1_4400).is_none(), "no aliasing above 64 KiB");
        assert!(s.fetch(0x1_4400).is_none());
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn inserting_at_an_odd_address_panics() {
        InstrStore::new().insert(0x4401, Instr::Nop);
    }

    #[test]
    fn iteration_is_in_address_order() {
        let mut s = InstrStore::new();
        s.insert(0x5000, Instr::Ret);
        s.insert(0x4400, Instr::Nop);
        s.insert(0x4800, Instr::Halt);
        let addrs: Vec<Addr> = s.iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x4400, 0x4800, 0x5000]);
        assert_eq!(s.first().unwrap().0, 0x4400);
        assert_eq!(s.last().unwrap().0, 0x5000);
    }

    #[test]
    fn range_matches_btreemap_semantics() {
        let mut s = InstrStore::new();
        for addr in [0x4400u32, 0x4402, 0x4404, 0x4406] {
            s.insert(addr, Instr::Nop);
        }
        let addrs: Vec<Addr> = s.range(0x4402..0x4406).map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x4402, 0x4404]);
        // Odd bounds round inward to the next word.
        let addrs: Vec<Addr> = s.range(0x4401..0x4405).map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x4402, 0x4404]);
        assert_eq!(s.range(0x4408..0x5000).count(), 0);
        assert_eq!(s.range(0x4404..0x4404).count(), 0);
    }

    use crate::isa::Cond;

    /// Assembles `instrs` densely from `base` and returns the store.
    fn asm(base: Addr, instrs: &[Instr]) -> InstrStore {
        let mut s = InstrStore::new();
        let mut cursor = base;
        for i in instrs {
            s.insert(cursor, *i);
            cursor += i.size_bytes();
        }
        s
    }

    fn cmp(a: Reg, imm: u16) -> Instr {
        Instr::CmpImm { a, imm }
    }

    fn jcc(cond: Cond, target: u16) -> Instr {
        Instr::Jcc { cond, target }
    }

    #[test]
    fn fuse_matches_every_aft_shape_once() {
        let mut s = asm(
            0x4400,
            &[
                // Double bound check (16 bytes).
                cmp(Reg::R14, 0x1C00),
                jcc(Cond::Lo, 0x4500),
                cmp(Reg::R14, 0x2000),
                jcc(Cond::Hs, 0x4500),
                // Add-then-check loop tail (12 bytes).
                Instr::AluImm {
                    op: AluOp::Add,
                    dst: Reg::R4,
                    imm: 2,
                },
                cmp(Reg::R4, 100),
                jcc(Cond::Lo, 0x4400),
                // Call prologue + epilogue head (8 bytes).
                Instr::Push { src: Reg::FP },
                Instr::Mov {
                    dst: Reg::FP,
                    src: Reg::SP,
                },
                Instr::Mov {
                    dst: Reg::SP,
                    src: Reg::FP,
                },
                Instr::Pop { dst: Reg::FP },
                // Fully-elided double check (16 bytes).
                Instr::Elided {
                    words: 4,
                    cycles: 4,
                },
                Instr::Elided {
                    words: 4,
                    cycles: 4,
                },
                // Unfusable tail, then a single check.
                Instr::Ret,
                cmp(Reg::R5, 7),
                jcc(Cond::Eq, 0x4400),
                Instr::Halt,
            ],
        );
        let report = s.fuse();
        assert!(s.is_fused());
        assert_eq!(report.sequences, 6);
        assert_eq!(report.fused_instructions, 4 + 3 + 2 + 2 + 2 + 2);
        assert_eq!(report.checks, 1);
        assert_eq!(report.double_checks, 1);
        assert_eq!(report.add_checks, 1);
        assert_eq!(report.prologues, 1);
        assert_eq!(report.epilogues, 1);
        assert_eq!(report.elided_pairs, 1);
        // Heads resolve; interiors do not (a branch into a sequence
        // interior executes the tail unfused).
        assert!(matches!(s.super_op_at(0x4400), Some(SuperOp::Check2(..))));
        assert!(s.super_op_at(0x4404).is_none());
        assert!(matches!(
            s.super_op_at(0x4410),
            Some(SuperOp::AddCheck { .. })
        ));
        assert!(matches!(
            s.super_op_at(0x441C),
            Some(SuperOp::PushMov { .. })
        ));
        assert!(matches!(
            s.super_op_at(0x4420),
            Some(SuperOp::MovPop { .. })
        ));
        assert!(matches!(
            s.super_op_at(0x4424),
            Some(SuperOp::ElidedPair { .. })
        ));
        assert!(s.super_op_at(0x4434).is_none(), "Ret does not fuse");
        assert!(matches!(s.super_op_at(0x4436), Some(SuperOp::Check(_))));
    }

    #[test]
    fn fuse_requires_exact_adjacency() {
        // A gap between the CmpImm and its Jcc (e.g. across functions)
        // must not fuse: the executor derives component addresses from
        // the head.
        let mut s = InstrStore::new();
        s.insert(0x4400, cmp(Reg::R4, 1));
        s.insert(0x4406, jcc(Cond::Lo, 0x4500)); // 0x4404 expected
        let report = s.fuse();
        assert!(!s.is_fused());
        assert_eq!(report, FuseReport::default());
    }

    #[test]
    fn fuse_refuses_pc_operands() {
        let mut s = asm(
            0x4400,
            &[
                cmp(Reg::PC, 0x4400),
                jcc(Cond::Eq, 0x4500),
                Instr::Push { src: Reg::PC },
                Instr::Mov {
                    dst: Reg::FP,
                    src: Reg::SP,
                },
                Instr::Mov {
                    dst: Reg::SP,
                    src: Reg::PC,
                },
                Instr::Pop { dst: Reg::FP },
            ],
        );
        s.fuse();
        assert!(
            !s.is_fused(),
            "components naming PC must all execute unfused"
        );
    }

    #[test]
    fn fuse_is_idempotent_and_insert_invalidates() {
        let mut s = asm(0x4400, &[cmp(Reg::R4, 1), jcc(Cond::Lo, 0x4500)]);
        let first = s.fuse();
        let second = s.fuse();
        assert_eq!(first, second);
        assert!(s.is_fused());
        // Any mutation invalidates the derived overlay.
        s.insert(0x4408, Instr::Halt);
        assert!(!s.is_fused());
        assert!(s.super_op_at(0x4400).is_none());
        // Re-deriving restores it.
        s.fuse();
        assert!(matches!(s.super_op_at(0x4400), Some(SuperOp::Check(_))));
    }

    #[test]
    fn fusion_overlay_does_not_affect_store_equality() {
        let unfused = asm(0x4400, &[cmp(Reg::R4, 1), jcc(Cond::Lo, 0x4500)]);
        let mut fused = unfused.clone();
        fused.fuse();
        assert!(fused.is_fused());
        assert_eq!(
            unfused, fused,
            "fusion is derived state; stores with identical slots are equal"
        );
    }

    #[test]
    fn collects_from_an_iterator() {
        let s: InstrStore = [
            (0x4400u32, Instr::Nop),
            (
                0x4402,
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 1,
                },
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
    }
}
