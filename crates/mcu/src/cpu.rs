//! The CPU core: registers, flags, and the execute loop.
//!
//! The CPU executes decoded [`Instr`]s fetched from the device's instruction
//! store, performing every data access and instruction-fetch permission check
//! through the [`Bus`] (and therefore through the MPU).  Execution stops at
//! system calls, software faults, MPU violations, handler returns, or an
//! explicit halt, handing control back to the embedding code (`amulet-os`).

use crate::bus::{Bus, BusFault, BusFaultCause};
use crate::code;
use crate::code::InstrStore;
use crate::isa::{AluOp, Cond, Instr, Reg, SuperOp, UnaryOp, Width};
use amulet_core::addr::Addr;
use amulet_core::fault::FaultClass;
use std::fmt;

/// Magic return address pushed by the OS before invoking an application
/// handler; a `ret` that pops it ends the handler instead of jumping.
pub const HANDLER_RETURN: Addr = 0xFFFE;

/// Details of a fault raised during execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInfo {
    /// Classification of the fault.
    pub class: FaultClass,
    /// Program counter of the faulting instruction.
    pub pc: Addr,
    /// Data address involved, when the fault came from a memory access.
    pub addr: Option<Addr>,
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(a) => write!(
                f,
                "{} at pc={:#06x} (address {:#06x})",
                self.class, self.pc, a
            ),
            None => write!(f, "{} at pc={:#06x}", self.class, self.pc),
        }
    }
}

/// Dispatch outcome: either the next program counter (execution
/// continues) or a stopping [`StepEvent`] (the PC is already positioned).
enum Flow {
    /// Continue at this program counter.
    Next(Addr),
    /// Stop and report this event.
    Stop(StepEvent),
}

/// What happened during one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEvent {
    /// Execution may continue with the next instruction.
    Continue,
    /// The instruction was a system call; the OS must service it and then
    /// resume execution (the program counter already points past the
    /// `syscall`).
    Syscall {
        /// System-call number.
        num: u16,
    },
    /// The current handler returned to the OS (popped [`HANDLER_RETURN`]).
    HandlerDone,
    /// A fault occurred (software check, MPU violation, illegal instruction).
    Fault(FaultInfo),
    /// The program executed a `halt`.
    Halted,
}

/// CPU execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Instructions that touched data memory (the ARP's "memory access"
    /// count).
    pub data_accesses: u64,
    /// System calls executed.
    pub syscalls: u64,
    /// Faults raised.
    pub faults: u64,
}

/// The CPU register file, flags and cycle counter.
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u16; Reg::COUNT],
    /// Zero flag.
    pub flag_z: bool,
    /// Negative flag.
    pub flag_n: bool,
    /// Carry flag (set when a subtraction does not borrow, MSP430 style).
    pub flag_c: bool,
    /// Overflow flag.
    pub flag_v: bool,
    /// Total cycles consumed (instruction execution plus charges from the
    /// OS model).
    pub cycles: u64,
    /// Execution statistics.
    pub stats: CpuStats,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers zeroed.
    pub fn new() -> Self {
        Cpu {
            regs: [0; Reg::COUNT],
            flag_z: false,
            flag_n: false,
            flag_c: false,
            flag_v: false,
            cycles: 0,
            stats: CpuStats::default(),
        }
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u16 {
        if r == Reg::SR {
            self.status_word()
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u16) {
        if r == Reg::SR {
            self.set_status_word(value);
        } else {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> Addr {
        self.regs[Reg::PC.index()] as Addr
    }

    /// Sets the program counter.
    #[inline]
    pub fn set_pc(&mut self, pc: Addr) {
        self.regs[Reg::PC.index()] = pc as u16;
    }

    /// Current stack pointer.
    pub fn sp(&self) -> Addr {
        self.regs[Reg::SP.index()] as Addr
    }

    /// Sets the stack pointer.
    pub fn set_sp(&mut self, sp: Addr) {
        self.regs[Reg::SP.index()] = sp as u16;
    }

    /// Packs the flags into an MSP430-style status word.
    pub fn status_word(&self) -> u16 {
        (self.flag_c as u16)
            | ((self.flag_z as u16) << 1)
            | ((self.flag_n as u16) << 2)
            | ((self.flag_v as u16) << 8)
    }

    /// Unpacks an MSP430-style status word into the flags.
    pub fn set_status_word(&mut self, sr: u16) {
        self.flag_c = sr & 0x0001 != 0;
        self.flag_z = sr & 0x0002 != 0;
        self.flag_n = sr & 0x0004 != 0;
        self.flag_v = sr & 0x0100 != 0;
    }

    /// Adds `n` cycles to the cycle counter (used by the OS cost model) and
    /// returns the new total.
    pub fn charge(&mut self, n: u64) -> u64 {
        self.cycles += n;
        self.cycles
    }

    fn set_flags_logic(&mut self, result: u16) {
        self.flag_z = result == 0;
        self.flag_n = result & 0x8000 != 0;
        self.flag_v = false;
    }

    fn set_flags_add(&mut self, a: u16, b: u16, result: u16) {
        self.flag_z = result == 0;
        self.flag_n = result & 0x8000 != 0;
        self.flag_c = (a as u32 + b as u32) > 0xFFFF;
        self.flag_v = ((a ^ result) & (b ^ result) & 0x8000) != 0;
    }

    fn set_flags_sub(&mut self, a: u16, b: u16, result: u16) {
        self.flag_z = result == 0;
        self.flag_n = result & 0x8000 != 0;
        // MSP430 convention: C is set when no borrow occurred (a >= b
        // unsigned).
        self.flag_c = a >= b;
        self.flag_v = ((a ^ b) & (a ^ result) & 0x8000) != 0;
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.flag_z,
            Cond::Ne => !self.flag_z,
            Cond::Lo => !self.flag_c,
            Cond::Hs => self.flag_c,
            Cond::Lt => self.flag_n != self.flag_v,
            Cond::Ge => self.flag_n == self.flag_v,
            Cond::Mi => self.flag_n,
            Cond::Pl => !self.flag_n,
        }
    }

    fn bus_fault_to_event(&mut self, pc: Addr, fault: BusFault) -> StepEvent {
        self.stats.faults += 1;
        let class = match fault.cause {
            BusFaultCause::MpuViolation | BusFaultCause::ExtendedMpuViolation => {
                FaultClass::MpuViolation
            }
            // Unmapped addresses, read-only memory, misaligned words and MPU
            // register-protocol violations are all programming errors rather
            // than isolation checks; report them as illegal instructions so
            // the OS fault handler can still log and kill the app.
            _ => FaultClass::IllegalInstruction,
        };
        StepEvent::Fault(FaultInfo {
            class,
            pc,
            addr: Some(fault.addr),
        })
    }

    // Data-access counting happens once per retired instruction (via
    // `touches_data_memory`), not here, so call/return stack traffic does not
    // inflate the ARP's "memory access" count.
    fn read_mem(&mut self, bus: &mut Bus, addr: Addr, width: Width) -> Result<u16, BusFault> {
        bus.read(addr, width.bytes())
    }

    fn write_mem(
        &mut self,
        bus: &mut Bus,
        addr: Addr,
        width: Width,
        value: u16,
    ) -> Result<(), BusFault> {
        bus.write(addr, width.bytes(), value)
    }

    fn push(&mut self, bus: &mut Bus, value: u16) -> Result<(), BusFault> {
        let sp = self.sp().wrapping_sub(2) & 0xFFFF;
        self.set_sp(sp);
        self.write_mem(bus, sp, Width::Word, value)
    }

    fn pop(&mut self, bus: &mut Bus) -> Result<u16, BusFault> {
        let sp = self.sp();
        let v = self.read_mem(bus, sp, Width::Word)?;
        self.set_sp((sp + 2) & 0xFFFF);
        Ok(v)
    }

    /// Executes one instruction fetched from `code`, performing all memory
    /// traffic through `bus`.  Single-step form of [`Cpu::run_block`].
    pub fn step(&mut self, bus: &mut Bus, code: &InstrStore) -> StepEvent {
        match self.run_block(bus, code, 1) {
            (Some(ev), _) => ev,
            // The budget of one ran out without a stopping event: the one
            // instruction executed and execution may continue.
            (None, _) => StepEvent::Continue,
        }
    }

    /// Executes up to `max_steps` instructions as one block — the hot loop
    /// behind [`crate::device::Device::run`].
    ///
    /// Per-step work is minimal by construction: the instruction table is
    /// resolved once for the whole block, each fetch is a single masked
    /// index (permission-checked through [`Bus::check_execute`] first),
    /// and the retired-instruction, cycle and data-access counters
    /// accumulate in locals, flushed once at block exit, instead of
    /// read-modify-writing `self` per step.  The benchmark timer advances
    /// with every executed instruction (its memory-mapped counter stays
    /// exact even for firmware that reads it mid-block).  Returns `None`
    /// when the step budget ran out, otherwise the stopping event, along
    /// with the number of steps consumed.
    pub fn run_block(
        &mut self,
        bus: &mut Bus,
        code: &InstrStore,
        max_steps: u64,
    ) -> (Option<StepEvent>, u64) {
        let table = code.table();
        let fused = code.fused();
        let mut steps: u64 = 0;
        let mut instructions: u64 = 0;
        let mut cycles: u64 = 0;
        let mut data_accesses: u64 = 0;
        let stop = loop {
            if steps >= max_steps {
                break None;
            }
            let pc = self.pc();
            // Fused fast path: when the store was fused and this address
            // heads a superinstruction, dispatch the whole sequence in one
            // call — unless the step budget cannot cover every component,
            // or a component's execute probe declines, in which case the
            // head executes unfused below so that any partition of a run
            // into blocks retires the identical instruction sequence.
            if let Some((heads, ops)) = fused {
                let fi = heads[((pc >> 1) as usize) & (code::SLOT_COUNT - 1)];
                if fi != 0 {
                    let op = &ops[(fi - 1) as usize];
                    if max_steps - steps >= op.components() {
                        match self.run_super(
                            bus,
                            op,
                            pc,
                            &mut steps,
                            &mut instructions,
                            &mut cycles,
                            &mut data_accesses,
                        ) {
                            Some(Flow::Next(new_pc)) => {
                                self.set_pc(new_pc);
                                continue;
                            }
                            Some(Flow::Stop(ev)) => break Some(ev),
                            None => {}
                        }
                    }
                }
            }
            steps += 1;
            if let Err(fault) = bus.check_execute(pc) {
                break Some(self.bus_fault_to_event(pc, fault));
            }
            // `check_execute` rejected odd PCs and the PC register is
            // 16-bit, so the masked slot index is exact.
            let slot = table.map(|t| &t[((pc >> 1) as usize) & (code::SLOT_COUNT - 1)]);
            let Some(slot) = slot.filter(|s| !s.is_empty()) else {
                self.stats.faults += 1;
                break Some(StepEvent::Fault(FaultInfo {
                    class: FaultClass::IllegalInstruction,
                    pc,
                    addr: None,
                }));
            };
            let (instr, meta) = (slot.instr(), slot.meta());
            instructions += 1;
            cycles += meta.base_cycles();
            data_accesses += meta.touches_data_memory() as u64;
            // Every cycle an instruction consumes is its `base_cycles`
            // (dispatch arms never charge more), so ticking the timer after
            // dispatch reproduces per-step ticking exactly: an instruction
            // reading the memory-mapped counter sees all ticks through the
            // *previous* instruction.
            match self.dispatch(bus, instr, pc, pc + meta.size_bytes()) {
                Flow::Next(new_pc) => {
                    self.set_pc(new_pc);
                    bus.timer.tick(meta.base_cycles());
                }
                Flow::Stop(ev) => {
                    bus.timer.tick(meta.base_cycles());
                    break Some(ev);
                }
            }
        };
        self.stats.instructions += instructions;
        self.cycles += cycles;
        self.stats.data_accesses += data_accesses;
        (stop, steps)
    }

    /// Executes one fused superinstruction sequence.  Component by component
    /// this retires exactly what the unfused loop would — the same steps,
    /// instructions, cycles, data accesses, execute checks and timer ticks —
    /// but the dispatch `match` runs once per sequence instead of once per
    /// instruction, the counters accumulate in locals flushed at sequence
    /// exit, and the per-component execute checks collapse into one probe
    /// pass plus a batched `exec_checks` charge.
    ///
    /// The probe pass asks [`Bus::exec_allowed_fast`] — the non-counting
    /// equivalent of the fast path inside [`Bus::check_execute`] — for every
    /// component head up front.  Within a sequence only a data-memory access
    /// could disturb permissions, and the attribute table ignores data
    /// traffic entirely (MPU *register* writes bump its epoch, and those are
    /// memory-mapped writes a probe-passing sequence performs only through
    /// `push`/`pop`, whose targets the table does not gate execution on
    /// until the next table resolve — which cannot happen mid-sequence), so
    /// probing early returns exactly what probing at each component boundary
    /// would.  Any declined probe — fault, cache off, external MPU, slow
    /// region — returns `None` and the head retires through the exact
    /// per-instruction path below, which owns all of those semantics.
    ///
    /// `exec_checks` accounting stays exact because the unfused loop charges
    /// one check per *retired* component (taken branches retire too): each
    /// arm batches the charge for precisely the components that are
    /// guaranteed to retire once the probe has passed, and a component after
    /// a memory fault (which ends the sequence) is never charged.
    ///
    /// Timer exactness: [`crate::timer::Timer::tick`] only accumulates while
    /// the timer is running, and within a sequence only a data-memory access
    /// can change that state (or observe the counter), so deferred ticks are
    /// flushed before every memory-touching component, before any control
    /// transfer out of the sequence, and at sequence end.  Sequences never
    /// contain components that read or write `PC` as a general register
    /// (`match_super` refuses them), so deferring the per-component
    /// `set_pc` to sequence end is invisible too.
    #[allow(clippy::too_many_arguments)]
    fn run_super(
        &mut self,
        bus: &mut Bus,
        op: &SuperOp,
        pc: Addr,
        steps: &mut u64,
        instructions: &mut u64,
        cycles: &mut u64,
        data_accesses: &mut u64,
    ) -> Option<Flow> {
        // Probe every component head in one table resolve (offsets are
        // the components' encoded sizes; store addresses are always even,
        // so the misaligned arm of `check_execute` is unreachable here,
        // and the fuse pass matched a real instruction at every offset,
        // so none of them leaves the 16-bit space).
        let ok = match *op {
            SuperOp::Check(_) => bus.exec_allowed_fast(pc, [0, 4]),
            SuperOp::Check2(..) => bus.exec_allowed_fast(pc, [0, 4, 8, 12]),
            SuperOp::AddCheck { .. } => bus.exec_allowed_fast(pc, [0, 4, 8]),
            SuperOp::PushMov { .. } | SuperOp::MovPop { .. } => bus.exec_allowed_fast(pc, [0, 2]),
            SuperOp::ElidedPair { w1, .. } => bus.exec_allowed_fast(pc, [0, 2 * u32::from(w1)]),
        };
        if !ok {
            return None;
        }

        let mut at = pc;
        let mut pending: u64 = 0;
        let (mut d_steps, mut d_instr, mut d_cycles, mut d_data) = (0u64, 0u64, 0u64, 0u64);

        // Flushes the local counters into the block's, and the deferred
        // cycles into the timer; runs before every exit from the sequence.
        macro_rules! flush {
            () => {
                *steps += d_steps;
                *instructions += d_instr;
                *cycles += d_cycles;
                *data_accesses += d_data;
                bus.timer.tick(pending);
            };
        }
        // A retired pure component: counters plus a deferred timer tick.
        macro_rules! pure {
            ($bytes:expr, $cyc:expr) => {
                d_steps += 1;
                d_instr += 1;
                d_cycles += $cyc;
                pending += $cyc;
                at += $bytes;
            };
        }
        // The `CmpImm` of a check pair.
        macro_rules! cmp_imm {
            ($cb:expr) => {
                let x = self.reg($cb.a);
                let r = x.wrapping_sub($cb.imm);
                self.set_flags_sub(x, $cb.imm, r);
                pure!(4, 2);
            };
        }
        // The `Jcc` of a check pair: a taken branch leaves the sequence,
        // so it flushes the deferred state (its own tick included) first.
        macro_rules! branch {
            ($cb:expr) => {
                d_steps += 1;
                d_instr += 1;
                d_cycles += 2;
                pending += 2;
                if self.cond_holds($cb.cond) {
                    flush!();
                    return Some(Flow::Next($cb.target as Addr));
                }
                at += 4;
            };
        }

        match *op {
            SuperOp::Check(cb) => {
                bus.stats.exec_checks += 2;
                cmp_imm!(cb);
                branch!(cb);
            }
            SuperOp::Check2(cb1, cb2) => {
                bus.stats.exec_checks += 2;
                cmp_imm!(cb1);
                branch!(cb1);
                // The second pair's checks are charged only once the first
                // branch has fallen through — a taken first branch never
                // reaches them, fused or not.
                bus.stats.exec_checks += 2;
                cmp_imm!(cb2);
                branch!(cb2);
            }
            SuperOp::AddCheck { dst, imm, check } => {
                bus.stats.exec_checks += 3;
                let v = self.alu(AluOp::Add, self.reg(dst), imm);
                self.set_reg(dst, v);
                pure!(4, 2);
                cmp_imm!(check);
                branch!(check);
            }
            SuperOp::PushMov { push, dst, src } => {
                bus.stats.exec_checks += 1;
                d_steps += 1;
                d_instr += 1;
                d_cycles += 3;
                d_data += 1;
                // Ticks deferred so far land before the memory access;
                // the push's own 3 cycles are re-deferred on every path.
                bus.timer.tick(pending);
                let v = self.reg(push);
                if let Err(fault) = self.push(bus, v) {
                    pending = 3;
                    flush!();
                    // The unfused loop leaves the PC register on the
                    // faulting instruction (every earlier component
                    // advanced it); mirror that exactly.
                    self.set_pc(at);
                    return Some(Flow::Stop(self.bus_fault_to_event(at, fault)));
                }
                pending = 3;
                at += 2;
                bus.stats.exec_checks += 1;
                let v = self.reg(src);
                self.set_reg(dst, v);
                pure!(2, 1);
            }
            SuperOp::MovPop { dst, src, pop } => {
                bus.stats.exec_checks += 1;
                let v = self.reg(src);
                self.set_reg(dst, v);
                pure!(2, 1);
                bus.stats.exec_checks += 1;
                d_steps += 1;
                d_instr += 1;
                d_cycles += 2;
                d_data += 1;
                // Same flush-before-memory discipline as the push above.
                bus.timer.tick(pending);
                match self.pop(bus) {
                    Ok(v) => self.set_reg(pop, v),
                    Err(fault) => {
                        pending = 2;
                        flush!();
                        // As for the push above: the fault leaves the PC
                        // register on the faulting component.
                        self.set_pc(at);
                        return Some(Flow::Stop(self.bus_fault_to_event(at, fault)));
                    }
                }
                pending = 2;
                at += 2;
            }
            SuperOp::ElidedPair { w1, c1, w2, c2 } => {
                bus.stats.exec_checks += 2;
                pure!(2 * u32::from(w1), u64::from(c1));
                pure!(2 * u32::from(w2), u64::from(c2));
            }
        }

        flush!();
        Some(Flow::Next(at))
    }

    /// Executes one already-fetched instruction: every arm either produces
    /// the next program counter or stops with an event (having already
    /// positioned the PC the way [`Cpu::step`] always has).
    #[inline(always)]
    fn dispatch(&mut self, bus: &mut Bus, instr: Instr, pc: Addr, next_pc: Addr) -> Flow {
        let mut new_pc = next_pc;

        macro_rules! try_mem {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(fault) => return Flow::Stop(self.bus_fault_to_event(pc, fault)),
                }
            };
        }

        match instr {
            Instr::MovImm { dst, imm } => self.set_reg(dst, imm),
            Instr::Mov { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
            }
            Instr::Load {
                dst,
                base,
                offset,
                width,
            } => {
                let addr = (self.reg(base) as i32 + offset as i32) as u16 as Addr;
                let v = try_mem!(self.read_mem(bus, addr, width));
                self.set_reg(dst, v);
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                let addr = (self.reg(base) as i32 + offset as i32) as u16 as Addr;
                let v = self.reg(src);
                try_mem!(self.write_mem(bus, addr, width, v));
            }
            Instr::LoadAbs { dst, addr, width } => {
                let v = try_mem!(self.read_mem(bus, addr as Addr, width));
                self.set_reg(dst, v);
            }
            Instr::StoreAbs { src, addr, width } => {
                let v = self.reg(src);
                try_mem!(self.write_mem(bus, addr as Addr, width, v));
            }
            Instr::Push { src } => {
                let v = self.reg(src);
                try_mem!(self.push(bus, v));
            }
            Instr::Pop { dst } => {
                let v = try_mem!(self.pop(bus));
                self.set_reg(dst, v);
            }
            Instr::Alu { op, dst, src } => {
                let v = self.alu(op, self.reg(dst), self.reg(src));
                self.set_reg(dst, v);
            }
            Instr::AluImm { op, dst, imm } => {
                let v = self.alu(op, self.reg(dst), imm);
                self.set_reg(dst, v);
            }
            Instr::Unary { op, reg } => {
                let a = self.reg(reg);
                let v = match op {
                    UnaryOp::Neg => (a as i16).wrapping_neg() as u16,
                    UnaryOp::Not => !a,
                    UnaryOp::Shl(n) => a.wrapping_shl(n as u32),
                    UnaryOp::Shr(n) => a.wrapping_shr(n as u32),
                    UnaryOp::Sar(n) => ((a as i16) >> n.min(15)) as u16,
                };
                self.set_flags_logic(v);
                self.set_reg(reg, v);
            }
            Instr::Cmp { a, b } => {
                let (x, y) = (self.reg(a), self.reg(b));
                let r = x.wrapping_sub(y);
                self.set_flags_sub(x, y, r);
            }
            Instr::CmpImm { a, imm } => {
                let x = self.reg(a);
                let r = x.wrapping_sub(imm);
                self.set_flags_sub(x, imm, r);
            }
            Instr::Jmp { target } => new_pc = target as Addr,
            Instr::Jcc { cond, target } => {
                if self.cond_holds(cond) {
                    new_pc = target as Addr;
                }
            }
            Instr::Br { reg } => {
                let target = self.reg(reg) as Addr;
                if target == HANDLER_RETURN {
                    self.set_pc(next_pc);
                    return Flow::Stop(StepEvent::HandlerDone);
                }
                new_pc = target;
            }
            Instr::Call { target } => {
                try_mem!(self.push(bus, next_pc as u16));
                new_pc = target as Addr;
            }
            Instr::CallReg { reg } => {
                let target = self.reg(reg) as Addr;
                try_mem!(self.push(bus, next_pc as u16));
                new_pc = target;
            }
            Instr::Ret => {
                let ra = try_mem!(self.pop(bus)) as Addr;
                if ra == HANDLER_RETURN {
                    self.set_pc(next_pc);
                    return Flow::Stop(StepEvent::HandlerDone);
                }
                new_pc = ra;
            }
            Instr::Syscall { num } => {
                self.stats.syscalls += 1;
                self.set_pc(next_pc);
                return Flow::Stop(StepEvent::Syscall { num });
            }
            Instr::Fault { code } => {
                self.stats.faults += 1;
                let class = FaultClass::ALL
                    .get(code as usize)
                    .copied()
                    .unwrap_or(FaultClass::IllegalInstruction);
                self.set_pc(next_pc);
                return Flow::Stop(StepEvent::Fault(FaultInfo {
                    class,
                    pc,
                    addr: None,
                }));
            }
            Instr::Halt => {
                self.set_pc(pc);
                return Flow::Stop(StepEvent::Halted);
            }
            Instr::Nop => {}
            // A verifier-elided check sequence: the branch it replaced was
            // proven never-taken, so execution simply falls through.  Size
            // and cycle cost are carried by the instruction metadata, which
            // `run_block` has already charged by the time we get here.
            Instr::Elided { .. } => {}
        }

        Flow::Next(new_pc)
    }

    fn alu(&mut self, op: AluOp, a: u16, b: u16) -> u16 {
        match op {
            AluOp::Add => {
                let r = a.wrapping_add(b);
                self.set_flags_add(a, b, r);
                r
            }
            AluOp::Sub => {
                let r = a.wrapping_sub(b);
                self.set_flags_sub(a, b, r);
                r
            }
            AluOp::And => {
                let r = a & b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.set_flags_logic(r);
                r
            }
            AluOp::Mul => {
                let r = (a as i16 as i32).wrapping_mul(b as i16 as i32) as u16;
                self.set_flags_logic(r);
                r
            }
            AluOp::Div => {
                let r = if b == 0 {
                    0
                } else {
                    ((a as i16) / (b as i16)) as u16
                };
                self.set_flags_logic(r);
                r
            }
            AluOp::Rem => {
                let r = if b == 0 {
                    0
                } else {
                    ((a as i16) % (b as i16)) as u16
                };
                self.set_flags_logic(r);
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;

    /// Assembles a program at `base` into a dense instruction store.
    fn asm(base: Addr, instrs: &[Instr]) -> InstrStore {
        let mut code = InstrStore::new();
        let mut cursor = base;
        for i in instrs {
            code.insert(cursor, *i);
            cursor += i.size_bytes();
        }
        code
    }

    fn run_program(instrs: &[Instr]) -> (Cpu, Bus) {
        let base = 0x4400;
        let code = asm(base, instrs);
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(base);
        cpu.set_sp(0x2400);
        for _ in 0..10_000 {
            match cpu.step(&mut bus, &code) {
                StepEvent::Continue => {}
                StepEvent::Halted => return (cpu, bus),
                other => panic!("unexpected event {other:?}"),
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_and_flags() {
        let (cpu, _) = run_program(&[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 40,
            },
            Instr::MovImm {
                dst: Reg::R5,
                imm: 2,
            },
            Instr::Alu {
                op: AluOp::Add,
                dst: Reg::R4,
                src: Reg::R5,
            },
            Instr::AluImm {
                op: AluOp::Mul,
                dst: Reg::R4,
                imm: 3,
            },
            Instr::Halt,
        ]);
        assert_eq!(cpu.reg(Reg::R4), 126);
    }

    #[test]
    fn loads_and_stores_roundtrip_through_sram() {
        let (cpu, bus) = run_program(&[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 0x1C00,
            },
            Instr::MovImm {
                dst: Reg::R5,
                imm: 0xABCD,
            },
            Instr::Store {
                src: Reg::R5,
                base: Reg::R4,
                offset: 4,
                width: Width::Word,
            },
            Instr::Load {
                dst: Reg::R6,
                base: Reg::R4,
                offset: 4,
                width: Width::Word,
            },
            Instr::Halt,
        ]);
        assert_eq!(cpu.reg(Reg::R6), 0xABCD);
        assert_eq!(bus.read_raw(0x1C04, 2), 0xABCD);
        assert_eq!(cpu.stats.data_accesses, 2);
    }

    #[test]
    fn conditional_branches_follow_unsigned_comparison() {
        // if (r4 < 100) r5 = 1 else r5 = 2
        let (cpu, _) = run_program(&[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 42,
            },
            Instr::CmpImm {
                a: Reg::R4,
                imm: 100,
            },
            Instr::Jcc {
                cond: Cond::Hs,
                target: 0x4410,
            },
            Instr::MovImm {
                dst: Reg::R5,
                imm: 1,
            }, // 0x440A..0x440E
            Instr::Jmp { target: 0x4414 }, // 0x440E..0x4412 -- adjusted below
            Instr::Halt,
        ]);
        // The exact layout matters less than the decision: 42 < 100 so the
        // "lower" path ran.
        assert_eq!(cpu.reg(Reg::R5), 1);
    }

    #[test]
    fn call_and_ret_use_the_stack() {
        let base = 0x4400;
        // main: call f; halt.  f: r4 = 7; ret.
        let code = asm(
            base,
            &[
                Instr::Call { target: 0x4410 }, // 4 bytes
                Instr::Halt,                    // 2 bytes at 0x4404
            ],
        );
        let mut code = code;
        for (a, i) in asm(
            0x4410,
            &[
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 7,
                },
                Instr::Ret,
            ],
        )
        .iter()
        {
            code.insert(a, *i);
        }
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(base);
        cpu.set_sp(0x2400);
        loop {
            match cpu.step(&mut bus, &code) {
                StepEvent::Continue => {}
                StepEvent::Halted => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cpu.reg(Reg::R4), 7);
        assert_eq!(cpu.sp(), 0x2400, "stack balanced after return");
    }

    #[test]
    fn ret_to_magic_address_ends_the_handler() {
        let base = 0x4400;
        let code = asm(base, &[Instr::Ret]);
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_sp(0x2400);
        // Simulate the OS pushing the magic return address before the call.
        cpu.push(&mut bus, HANDLER_RETURN as u16).unwrap();
        cpu.set_pc(base);
        assert_eq!(cpu.step(&mut bus, &code), StepEvent::HandlerDone);
    }

    #[test]
    fn syscall_reports_number_and_advances_pc() {
        let base = 0x4400;
        let code = asm(base, &[Instr::Syscall { num: 7 }, Instr::Halt]);
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(base);
        cpu.set_sp(0x2400);
        assert_eq!(cpu.step(&mut bus, &code), StepEvent::Syscall { num: 7 });
        assert_eq!(cpu.pc(), base + 2);
        assert_eq!(cpu.stats.syscalls, 1);
    }

    #[test]
    fn fault_instruction_maps_code_to_fault_class() {
        let base = 0x4400;
        let idx = FaultClass::ALL
            .iter()
            .position(|c| *c == FaultClass::DataPointerLowerBound)
            .unwrap() as u16;
        let code = asm(base, &[Instr::Fault { code: idx }]);
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(base);
        match cpu.step(&mut bus, &code) {
            StepEvent::Fault(info) => {
                assert_eq!(info.class, FaultClass::DataPointerLowerBound);
                assert_eq!(info.pc, base);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn executing_unknown_memory_is_an_illegal_instruction() {
        let code = InstrStore::new();
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(0x5000);
        match cpu.step(&mut bus, &code) {
            StepEvent::Fault(info) => assert_eq!(info.class, FaultClass::IllegalInstruction),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mpu_violation_during_store_becomes_a_fault_event() {
        let base = 0x4400;
        let code = asm(
            base,
            &[
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 0x9000,
                },
                Instr::Store {
                    src: Reg::R4,
                    base: Reg::R4,
                    offset: 0,
                    width: Width::Word,
                },
            ],
        );
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        // Configure MPU: everything below 0x8000 RWX-ish, above 0x8000 no
        // access.
        bus.mpu.write_register(crate::mpu::MPUSEGB1, 0x600).unwrap();
        bus.mpu.write_register(crate::mpu::MPUSEGB2, 0x800).unwrap();
        bus.mpu.write_register(crate::mpu::MPUSAM, 0x0037).unwrap();
        bus.mpu.write_register(crate::mpu::MPUCTL0, 0xA501).unwrap();
        cpu.set_pc(base);
        cpu.set_sp(0x2400);
        assert_eq!(cpu.step(&mut bus, &code), StepEvent::Continue);
        match cpu.step(&mut bus, &code) {
            StepEvent::Fault(info) => {
                assert_eq!(info.class, FaultClass::MpuViolation);
                assert_eq!(info.addr, Some(0x9000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cycles_accumulate_per_instruction() {
        let (cpu, _) = run_program(&[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 1,
            }, // 2 cycles
            Instr::Nop,  // 1
            Instr::Nop,  // 1
            Instr::Halt, // 1
        ]);
        assert_eq!(cpu.cycles, 5);
        assert_eq!(cpu.stats.instructions, 4);
    }

    #[test]
    fn status_word_roundtrip() {
        let mut cpu = Cpu::new();
        cpu.flag_c = true;
        cpu.flag_n = true;
        let sr = cpu.status_word();
        let mut cpu2 = Cpu::new();
        cpu2.set_status_word(sr);
        assert!(cpu2.flag_c && cpu2.flag_n && !cpu2.flag_z && !cpu2.flag_v);
    }

    #[test]
    fn signed_conditions() {
        let mut cpu = Cpu::new();
        // -5 < 3 signed, but 0xFFFB > 3 unsigned.
        let a: u16 = (-5i16) as u16;
        let r = a.wrapping_sub(3);
        cpu.set_flags_sub(a, 3, r);
        assert!(cpu.cond_holds(Cond::Lt));
        assert!(!cpu.cond_holds(Cond::Ge));
        assert!(
            cpu.cond_holds(Cond::Hs),
            "unsigned comparison sees a large value"
        );
    }

    /// A check-heavy loop exercising every fused shape: the timer is
    /// started and read mid-loop (so deferred ticks must stay exact), a
    /// double bound check guards a store, an add-then-check tail loops,
    /// and a called function runs the fused prologue/epilogue.
    fn fusable_program() -> InstrStore {
        let mut code = asm(
            0x4400,
            &[
                Instr::StoreAbs {
                    src: Reg::R7,
                    addr: crate::timer::TIMER_CONTROL as u16,
                    width: Width::Word,
                }, // started below via R7 = 0x0020
                Instr::MovImm {
                    dst: Reg::R14,
                    imm: 0x1C00,
                },
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 0,
                },
                // loop (0x440C):
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0x1C00,
                },
                Instr::Jcc {
                    cond: Cond::Lo,
                    target: 0x4500,
                },
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0x2000,
                },
                Instr::Jcc {
                    cond: Cond::Hs,
                    target: 0x4500,
                },
                Instr::Store {
                    src: Reg::R4,
                    base: Reg::R14,
                    offset: 0,
                    width: Width::Word,
                },
                Instr::LoadAbs {
                    dst: Reg::R6,
                    addr: crate::timer::TIMER_COUNTER as u16,
                    width: Width::Word,
                },
                Instr::Call { target: 0x4480 },
                Instr::AluImm {
                    op: AluOp::Add,
                    dst: Reg::R4,
                    imm: 1,
                },
                Instr::CmpImm {
                    a: Reg::R4,
                    imm: 25,
                },
                Instr::Jcc {
                    cond: Cond::Lo,
                    target: 0x440C,
                },
                Instr::Halt,
            ],
        );
        // f: fused prologue, fused epilogue head, ret.
        for (a, i) in asm(
            0x4480,
            &[
                Instr::Push { src: Reg::FP },
                Instr::Mov {
                    dst: Reg::FP,
                    src: Reg::SP,
                },
                Instr::Mov {
                    dst: Reg::SP,
                    src: Reg::FP,
                },
                Instr::Pop { dst: Reg::FP },
                Instr::Ret,
            ],
        )
        .iter()
        {
            code.insert(a, *i);
        }
        // fail (0x4500):
        code.insert(0x4500, Instr::Fault { code: 0 });
        code
    }

    /// Runs `code` from 0x4400 in blocks of `block` steps until a stopping
    /// event (or a step cap), collecting every event.
    fn run_trace(code: &InstrStore, block: u64) -> (Cpu, Bus, Vec<StepEvent>) {
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(0x4400);
        cpu.set_sp(0x2400);
        cpu.set_reg(Reg::R7, 0x0020); // timer start value for StoreAbs
        let mut events = Vec::new();
        let mut total: u64 = 0;
        while total < 100_000 {
            let (ev, used) = cpu.run_block(&mut bus, code, block);
            total += used;
            if let Some(ev) = ev {
                events.push(ev);
                if matches!(ev, StepEvent::Halted | StepEvent::Fault(_)) {
                    break;
                }
            }
        }
        (cpu, bus, events)
    }

    fn assert_same_outcome(code: &InstrStore, fused: &InstrStore, block: u64) {
        let (cpu_u, bus_u, ev_u) = run_trace(code, block);
        let (cpu_f, bus_f, ev_f) = run_trace(fused, block);
        assert_eq!(ev_u, ev_f, "events diverge at block size {block}");
        assert_eq!(cpu_u.stats, cpu_f.stats);
        assert_eq!(cpu_u.cycles, cpu_f.cycles);
        assert_eq!(cpu_u.regs, cpu_f.regs);
        assert_eq!(
            (cpu_u.flag_z, cpu_u.flag_n, cpu_u.flag_c, cpu_u.flag_v),
            (cpu_f.flag_z, cpu_f.flag_n, cpu_f.flag_c, cpu_f.flag_v)
        );
        assert_eq!(bus_u.stats, bus_f.stats);
        assert_eq!(bus_u.timer.raw_cycles(), bus_f.timer.raw_cycles());
    }

    #[test]
    fn fused_execution_is_bit_identical_to_unfused() {
        let code = fusable_program();
        let mut fused = code.clone();
        let report = fused.fuse();
        assert!(report.double_checks > 0);
        assert!(report.add_checks > 0);
        assert!(report.prologues > 0);
        assert!(report.epilogues > 0);
        // Block size 1 never engages the fused path (budget gate), larger
        // blocks engage it mid-stream, u64::MAX runs it throughout — all
        // must retire the identical trace.
        for block in [1, 2, 3, 7, u64::MAX] {
            assert_same_outcome(&code, &fused, block);
        }
    }

    #[test]
    fn fused_check_taken_branch_leaves_the_sequence() {
        // R14 below the lower bound: the first Jcc of the fused double
        // check fires and lands on the fault stub.
        let code = asm(
            0x4400,
            &[
                Instr::MovImm {
                    dst: Reg::R14,
                    imm: 0x1000,
                },
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0x1C00,
                },
                Instr::Jcc {
                    cond: Cond::Lo,
                    target: 0x4500,
                },
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0x2000,
                },
                Instr::Jcc {
                    cond: Cond::Hs,
                    target: 0x4500,
                },
                Instr::Halt,
            ],
        );
        let mut fused = code.clone();
        fused.fuse();
        let mut code2 = InstrStore::new();
        for (a, i) in code.iter() {
            code2.insert(a, *i);
        }
        code2.insert(0x4500, Instr::Fault { code: 0 });
        let mut fused2 = code2.clone();
        fused2.fuse();
        for block in [1, 2, 4, u64::MAX] {
            assert_same_outcome(&code2, &fused2, block);
        }
        let (cpu, _, events) = run_trace(&fused2, u64::MAX);
        assert!(matches!(events[0], StepEvent::Fault(_)));
        // Exactly: MovImm + CmpImm + Jcc + Fault retired.
        assert_eq!(cpu.stats.instructions, 4);
    }

    #[test]
    fn fused_memory_fault_mid_sequence_matches_unfused() {
        // The Push of a fused prologue faults against the MPU: the fault
        // must surface identically to unfused execution, with the Mov
        // component never retiring.
        let code = asm(
            0x4400,
            &[
                Instr::Push { src: Reg::FP },
                Instr::Mov {
                    dst: Reg::FP,
                    src: Reg::SP,
                },
                Instr::Halt,
            ],
        );
        let mut fused = code.clone();
        fused.fuse();
        assert!(fused.is_fused());
        let run = |code: &InstrStore| {
            let mut cpu = Cpu::new();
            let mut bus = Bus::msp430fr5969();
            bus.mpu.write_register(crate::mpu::MPUSEGB1, 0x600).unwrap();
            bus.mpu.write_register(crate::mpu::MPUSEGB2, 0x800).unwrap();
            bus.mpu.write_register(crate::mpu::MPUSAM, 0x0037).unwrap();
            bus.mpu.write_register(crate::mpu::MPUCTL0, 0xA501).unwrap();
            cpu.set_pc(0x4400);
            cpu.set_sp(0x9002); // push writes 0x9000: no-access segment
            let ev = cpu.run_block(&mut bus, code, u64::MAX).0;
            (ev, cpu.stats, cpu.cycles, bus.stats, cpu.sp(), cpu.pc())
        };
        let unfused_out = run(&code);
        let fused_out = run(&fused);
        assert_eq!(unfused_out, fused_out);
        match unfused_out.0 {
            Some(StepEvent::Fault(info)) => {
                assert_eq!(info.class, FaultClass::MpuViolation);
                assert_eq!(info.addr, Some(0x9000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fused_budget_boundary_retires_the_head_unfused() {
        // A two-component sequence with a budget of one: the head executes
        // unfused, consuming exactly the budget.
        let code = asm(
            0x4400,
            &[
                Instr::CmpImm { a: Reg::R4, imm: 1 },
                Instr::Jcc {
                    cond: Cond::Eq,
                    target: 0x4400,
                },
                Instr::Halt,
            ],
        );
        let mut fused = code.clone();
        fused.fuse();
        let mut cpu = Cpu::new();
        let mut bus = Bus::msp430fr5969();
        cpu.set_pc(0x4400);
        cpu.set_sp(0x2400);
        let (ev, used) = cpu.run_block(&mut bus, &fused, 1);
        assert_eq!(ev, None);
        assert_eq!(used, 1);
        assert_eq!(cpu.stats.instructions, 1);
        assert_eq!(cpu.pc(), 0x4404, "only the CmpImm retired");
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let (cpu, _) = run_program(&[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 10,
            },
            Instr::MovImm {
                dst: Reg::R5,
                imm: 0,
            },
            Instr::Alu {
                op: AluOp::Div,
                dst: Reg::R4,
                src: Reg::R5,
            },
            Instr::Halt,
        ]);
        assert_eq!(cpu.reg(Reg::R4), 0);
    }
}
