//! The whole device: CPU + bus + instruction store + firmware loading.

use crate::bus::Bus;
use crate::code::InstrStore;
use crate::cpu::{Cpu, FaultInfo, StepEvent, HANDLER_RETURN};
use crate::firmware::Firmware;
use amulet_core::addr::Addr;
use amulet_core::layout::PlatformSpec;
use std::sync::Arc;

/// Why a [`Device::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed a `halt` instruction.
    Halted,
    /// The program executed a system call that the embedder must service.
    Syscall {
        /// System-call number.
        num: u16,
    },
    /// The current handler returned to the OS.
    HandlerDone,
    /// A fault was raised.
    Fault(FaultInfo),
    /// The step budget was exhausted before any of the above happened.
    StepLimit,
}

/// Result of a [`Device::run`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunExit {
    /// Why execution stopped.
    pub reason: StopReason,
    /// Instructions executed during this run.
    pub steps: u64,
    /// Cycles consumed during this run (including OS charges made while the
    /// run was in progress).
    pub cycles: u64,
}

/// A simulated MSP430FR5969-class device.
#[derive(Clone, Debug)]
pub struct Device {
    /// CPU core.
    pub cpu: Cpu,
    /// Memory bus (memory, MPU, timer).
    pub bus: Bus,
    /// Decoded instruction store (flat word-indexed table, O(1) fetch).
    /// Shared: loading firmware installs a reference to the image's store
    /// rather than copying the slot table.
    pub code: Arc<InstrStore>,
    /// The firmware image currently loaded, if any (shared, not copied).
    pub firmware: Option<Arc<Firmware>>,
}

impl Device {
    /// Creates a device for the given platform with empty memory.
    pub fn new(platform: PlatformSpec) -> Self {
        Device {
            cpu: Cpu::new(),
            bus: Bus::new(platform),
            code: Arc::new(InstrStore::new()),
            firmware: None,
        }
    }

    /// Creates an MSP430FR5969 device.
    pub fn msp430fr5969() -> Self {
        Device::new(PlatformSpec::msp430fr5969())
    }

    /// Loads a firmware image: installs the instruction store, copies
    /// initialised data into memory, and leaves the MPU disabled (the OS
    /// enables it when it schedules the first app).
    pub fn load_firmware(&mut self, fw: &Firmware) {
        self.load_firmware_shared(Arc::new(fw.clone()));
    }

    /// [`Device::load_firmware`] for an already-shared image: no part of the
    /// firmware is copied — the device holds references to the image's
    /// instruction store and metadata.  This is what lets a fleet of
    /// simulated devices with identical configs share one build.
    pub fn load_firmware_shared(&mut self, fw: Arc<Firmware>) {
        self.code = Arc::clone(&fw.code);
        for seg in &fw.data {
            self.bus.load_bytes(seg.addr, &seg.bytes);
        }
        self.cpu.set_sp(fw.os.initial_sp);
        self.firmware = Some(fw);
    }

    /// Returns the device to its power-on, freshly-loaded state so it can
    /// be reused for another simulation run **without** rebuilding the
    /// firmware or re-decoding the instruction store: the bus is reset in
    /// place (memory zeroed, MPUs disabled, timer stopped), the CPU is
    /// reset, and the loaded firmware's data segments and initial stack
    /// pointer are re-installed.  The decoded [`Device::code`] map — the
    /// expensive part of [`Device::load_firmware`] — is untouched, since
    /// instructions live in write-protected FRAM and cannot have changed.
    ///
    /// Returns `false` (after a plain reset) when no firmware is loaded.
    pub fn reset(&mut self) -> bool {
        self.bus.reset();
        self.cpu = Cpu::new();
        let Some(fw) = self.firmware.as_ref() else {
            return false;
        };
        for seg in &fw.data {
            self.bus.load_bytes(seg.addr, &seg.bytes);
        }
        self.cpu.set_sp(fw.os.initial_sp);
        true
    }

    /// Adds `n` cycles to the cycle counter (and the benchmark timer),
    /// modelling work done by OS code that is not executed instruction by
    /// instruction.
    pub fn charge_cycles(&mut self, n: u64) {
        self.cpu.charge(n);
        self.bus.timer.tick(n);
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cpu.cycles
    }

    /// Executes a single instruction (the CPU advances the benchmark timer
    /// by the instruction's cycles itself).
    pub fn step(&mut self) -> StepEvent {
        self.cpu.step(&mut self.bus, &self.code)
    }

    /// Runs until a halt, syscall, handler return, fault, or the step limit
    /// (one [`Cpu::run_block`] call; the benchmark timer advances with
    /// every executed instruction, so firmware that reads the memory-mapped
    /// counter mid-run observes exact values).
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        let start_cycles = self.cpu.cycles;
        let (stop, steps) = self.cpu.run_block(&mut self.bus, &self.code, max_steps);
        let reason = match stop {
            None => StopReason::StepLimit,
            Some(StepEvent::Halted) => StopReason::Halted,
            Some(StepEvent::Syscall { num }) => StopReason::Syscall { num },
            Some(StepEvent::HandlerDone) => StopReason::HandlerDone,
            Some(StepEvent::Fault(info)) => StopReason::Fault(info),
            // `run_block` never stops with Continue.
            Some(StepEvent::Continue) => unreachable!("run_block stopped with Continue"),
        };
        RunExit {
            reason,
            steps,
            cycles: self.cpu.cycles - start_cycles,
        }
    }

    /// Prepares the CPU to run a function at `entry` with the given stack
    /// pointer: the stack pointer is installed, the magic handler-return
    /// address is pushed, and the program counter is set.  Used by the OS to
    /// invoke application event handlers, and by tests to call arbitrary
    /// firmware functions.
    pub fn prepare_call(&mut self, entry: Addr, sp: Addr) {
        self.cpu.set_sp(sp);
        // Push the magic return address directly (bypassing MPU checks: on
        // real hardware this push is performed by trusted OS code running
        // under the OS MPU configuration).
        let new_sp = sp.wrapping_sub(2) & 0xFFFF;
        self.bus.write_raw(new_sp, 2, HANDLER_RETURN as u16);
        self.cpu.set_sp(new_sp);
        self.cpu.set_pc(entry);
    }

    /// Reads the benchmark timer (quantised to 16 cycles, as on the real
    /// part).
    pub fn read_timer(&self) -> u16 {
        self.bus.timer.read_counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{FirmwareBuilder, OsBinary};
    use crate::isa::{AluOp, Instr, Reg};
    use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
    use amulet_core::method::IsolationMethod;
    use amulet_core::mpu_plan::MpuPlan;

    fn simple_firmware() -> Firmware {
        let map = MemoryMapPlanner::msp430fr5969()
            .plan(
                &OsImageSpec::default(),
                &[AppImageSpec::new("A", 0x400, 0x100, 0x80)],
            )
            .unwrap();
        let os = OsBinary {
            mpu_config: MpuPlan::for_os_on(&map).unwrap().config(&map.platform.mpu),
            initial_sp: map.os_initial_stack_pointer(),
        };
        let mut b = FirmwareBuilder::new(IsolationMethod::NoIsolation, map.clone(), os);
        let entry = map.apps[0].code.start;
        b.emit(
            entry,
            &[
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 20,
                },
                Instr::AluImm {
                    op: AluOp::Add,
                    dst: Reg::R4,
                    imm: 22,
                },
                Instr::Ret,
            ],
        );
        b.define_symbol("A::main", entry);
        b.add_data(map.apps[0].data.start, vec![1, 2, 3, 4]);
        b.build().unwrap()
    }

    #[test]
    fn load_and_call_a_handler() {
        let fw = simple_firmware();
        let mut dev = Device::msp430fr5969();
        dev.load_firmware(&fw);
        // Data segment copied.
        assert_eq!(dev.bus.read_raw(fw.memory_map.apps[0].data.start, 1), 1);

        let entry = fw.symbol("A::main").unwrap();
        dev.prepare_call(entry, fw.memory_map.apps[0].initial_stack_pointer());
        let exit = dev.run(100);
        assert_eq!(exit.reason, StopReason::HandlerDone);
        assert_eq!(dev.cpu.reg(Reg::R4), 42);
        assert!(exit.cycles > 0);
    }

    #[test]
    fn step_limit_is_reported() {
        let fw = simple_firmware();
        let mut dev = Device::msp430fr5969();
        dev.load_firmware(&fw);
        let entry = fw.symbol("A::main").unwrap();
        dev.prepare_call(entry, fw.memory_map.apps[0].initial_stack_pointer());
        let exit = dev.run(1);
        assert_eq!(exit.reason, StopReason::StepLimit);
        assert_eq!(exit.steps, 1);
    }

    #[test]
    fn reset_reuses_the_device_for_an_identical_second_run() {
        let fw = simple_firmware();
        let mut dev = Device::msp430fr5969();
        dev.load_firmware(&fw);
        let entry = fw.symbol("A::main").unwrap();
        dev.prepare_call(entry, fw.memory_map.apps[0].initial_stack_pointer());
        let first = dev.run(100);
        assert_eq!(first.reason, StopReason::HandlerDone);

        assert!(dev.reset());
        assert_eq!(dev.cycles(), 0, "CPU state is back to power-on");
        assert_eq!(
            dev.bus.read_raw(fw.memory_map.apps[0].data.start, 1),
            1,
            "data segments are re-initialised"
        );
        dev.prepare_call(entry, fw.memory_map.apps[0].initial_stack_pointer());
        let again = dev.run(100);
        assert_eq!(again, first, "a reused device replays the run exactly");

        let mut empty = Device::msp430fr5969();
        assert!(!empty.reset(), "reset reports when no firmware is loaded");
    }

    #[test]
    fn charged_cycles_show_up_in_the_timer() {
        let mut dev = Device::msp430fr5969();
        dev.bus.timer.start();
        dev.charge_cycles(100);
        assert_eq!(dev.cycles(), 100);
        assert_eq!(dev.read_timer(), 96, "timer quantised to 16 cycles");
    }

    #[test]
    fn run_reports_cycle_delta_not_total() {
        let fw = simple_firmware();
        let mut dev = Device::msp430fr5969();
        dev.load_firmware(&fw);
        dev.charge_cycles(1_000);
        let entry = fw.symbol("A::main").unwrap();
        dev.prepare_call(entry, fw.memory_map.apps[0].initial_stack_pointer());
        let exit = dev.run(100);
        assert!(exit.cycles < 1_000, "only the run's own cycles are counted");
        assert!(dev.cycles() > 1_000);
    }
}
