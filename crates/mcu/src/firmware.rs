//! Firmware images.
//!
//! The Amulet Firmware Toolchain merges the OS with every selected
//! application and produces a single image for installation on the device.
//! [`Firmware`] is that image: the decoded instruction store, initial data,
//! a symbol table, and — crucially for this paper — per-application metadata
//! (bounds, entry points, initial stack pointer, MPU register values) that
//! the OS uses at every context switch.

use crate::code::InstrStore;
use crate::isa::Instr;
use amulet_core::addr::{Addr, AddrRange};
use amulet_core::layout::{AppPlacement, MemoryMap};
use amulet_core::method::IsolationMethod;
use amulet_core::mpu_plan::MpuConfig;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A chunk of initialised data to be copied into memory at load time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Destination address.
    pub addr: Addr,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

impl DataSegment {
    /// The address range the segment occupies.
    pub fn range(&self) -> AddrRange {
        AddrRange::from_len(self.addr, self.bytes.len() as u32)
    }
}

/// Per-application metadata embedded in the firmware image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppBinary {
    /// Application name.
    pub name: String,
    /// Index of the app in the build.
    pub index: usize,
    /// Where the app landed in FRAM (carries `C_i`, `D_i`, `T_i`).
    pub placement: AppPlacement,
    /// Event-handler entry points, by handler name.
    pub handlers: BTreeMap<String, Addr>,
    /// MPU configuration to install while this app runs (meaningful only
    /// when the build's isolation method uses the MPU).  Carries whichever
    /// register shape the target platform's MPU expects.
    pub mpu_config: MpuConfig,
    /// Initial stack pointer for the app (top of its stack region under the
    /// per-app-stack methods; the shared OS stack otherwise).
    pub initial_sp: Addr,
    /// The AFT's maximum-stack-depth estimate in bytes, or `None` when the
    /// app is recursive and no bound could be computed.
    pub max_stack_estimate: Option<u32>,
}

impl AppBinary {
    /// Looks up a handler entry point.
    pub fn handler(&self, name: &str) -> Option<Addr> {
        self.handlers.get(name).copied()
    }
}

/// OS-side metadata embedded in the firmware image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OsBinary {
    /// MPU configuration to install while the OS runs.
    pub mpu_config: MpuConfig,
    /// Initial (and per-switch) OS stack pointer, at the top of SRAM.
    pub initial_sp: Addr,
}

/// A complete firmware image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Firmware {
    /// The isolation method the image was built for.
    pub method: IsolationMethod,
    /// The memory map the AFT's final phase produced.
    pub memory_map: MemoryMap,
    /// Decoded instruction store: a flat word-indexed table with O(1)
    /// fetch (see [`InstrStore`]).  Shared behind an [`Arc`] so cloning a
    /// firmware image — and loading it onto many simulated devices — never
    /// copies the (multi-hundred-KiB) slot table; the store is immutable
    /// once built.
    pub code: Arc<InstrStore>,
    /// Initialised data segments.
    pub data: Vec<DataSegment>,
    /// Global symbol table (function entry points and data objects).
    pub symbols: BTreeMap<String, Addr>,
    /// Per-application metadata.
    pub apps: Vec<AppBinary>,
    /// OS metadata.
    pub os: OsBinary,
}

/// Problems detected by [`Firmware::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FirmwareError {
    /// Two instructions overlap (the earlier one's encoding extends over the
    /// later one's address).
    OverlappingInstructions {
        /// Address of the earlier instruction.
        first: Addr,
        /// Address of the overlapped instruction.
        second: Addr,
    },
    /// An application's code strays outside its code region.
    CodeOutOfBounds {
        /// Application name.
        app: String,
        /// Offending instruction address.
        addr: Addr,
    },
    /// A data segment overlaps an application's code region or another data
    /// segment.
    DataOverlap {
        /// Address where the overlap starts.
        addr: Addr,
    },
    /// A handler entry point does not correspond to any instruction.
    DanglingHandler {
        /// Application name.
        app: String,
        /// Handler name.
        handler: String,
        /// The bad address.
        addr: Addr,
    },
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::OverlappingInstructions { first, second } => {
                write!(
                    f,
                    "instruction at {first:#06x} overlaps instruction at {second:#06x}"
                )
            }
            FirmwareError::CodeOutOfBounds { app, addr } => {
                write!(
                    f,
                    "app `{app}` has code at {addr:#06x} outside its code region"
                )
            }
            FirmwareError::DataOverlap { addr } => write!(f, "data overlap at {addr:#06x}"),
            FirmwareError::DanglingHandler { app, handler, addr } => {
                write!(f, "app `{app}` handler `{handler}` points at {addr:#06x}, which holds no instruction")
            }
        }
    }
}

impl std::error::Error for FirmwareError {}

impl Firmware {
    /// Total encoded size of all instructions, in bytes.
    pub fn code_size_bytes(&self) -> u32 {
        self.code.iter().map(|(_, i)| i.size_bytes()).sum()
    }

    /// Number of instructions in the image.
    pub fn instruction_count(&self) -> usize {
        self.code.len()
    }

    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// Looks up an application by name.
    pub fn app(&self, name: &str) -> Option<&AppBinary> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// Runs the superinstruction fusion pass over the image's instruction
    /// store (see [`InstrStore::fuse`]).  Fusion is derived state: the
    /// encoded wire format and store keys are unchanged, only the in-memory
    /// dispatch overlay.  Clones the store when it is shared.
    pub fn fuse(&mut self) -> crate::code::FuseReport {
        let mut store = (*self.code).clone();
        let report = store.fuse();
        self.code = Arc::new(store);
        report
    }

    /// The address range spanned by the instruction store (for diagnostics).
    pub fn code_span(&self) -> Option<AddrRange> {
        let (first, _) = self.code.first()?;
        let (last_addr, last_instr) = self.code.last()?;
        Some(AddrRange::new(first, last_addr + last_instr.size_bytes()))
    }

    /// Structural validation of the image.
    pub fn validate(&self) -> Result<(), FirmwareError> {
        // Instructions must not overlap.
        let mut prev: Option<(Addr, u32)> = None;
        for (addr, instr) in self.code.iter() {
            if let Some((paddr, psize)) = prev {
                if paddr + psize > addr {
                    return Err(FirmwareError::OverlappingInstructions {
                        first: paddr,
                        second: addr,
                    });
                }
            }
            prev = Some((addr, instr.size_bytes()));
        }
        // App code must stay inside each app's code region, and handlers must
        // point at real instructions.
        for app in &self.apps {
            for (addr, instr) in self
                .code
                .range(app.placement.code.start..app.placement.code.end)
            {
                if addr + instr.size_bytes() > app.placement.code.end {
                    return Err(FirmwareError::CodeOutOfBounds {
                        app: app.name.clone(),
                        addr,
                    });
                }
            }
            for (hname, &haddr) in &app.handlers {
                if !self.code.contains(haddr) {
                    return Err(FirmwareError::DanglingHandler {
                        app: app.name.clone(),
                        handler: hname.clone(),
                        addr: haddr,
                    });
                }
            }
        }
        // Data segments must not overlap each other or any code.
        let mut data_ranges: Vec<AddrRange> = Vec::new();
        for seg in &self.data {
            let r = seg.range();
            for other in &data_ranges {
                if r.overlaps(other) {
                    return Err(FirmwareError::DataOverlap {
                        addr: r.start.max(other.start),
                    });
                }
            }
            // Instructions are at most 4 bytes, so only those starting just
            // below the segment can reach into it — scan that window alone.
            for (addr, instr) in self.code.range(r.start.saturating_sub(3)..r.end) {
                let ir = AddrRange::from_len(addr, instr.size_bytes());
                if r.overlaps(&ir) {
                    return Err(FirmwareError::DataOverlap {
                        addr: ir.start.max(r.start),
                    });
                }
            }
            data_ranges.push(r);
        }
        Ok(())
    }
}

/// Builder used by the AFT's final phase (and by tests) to assemble firmware
/// images instruction by instruction.
#[derive(Clone, Debug)]
pub struct FirmwareBuilder {
    method: IsolationMethod,
    memory_map: MemoryMap,
    code: InstrStore,
    data: Vec<DataSegment>,
    symbols: BTreeMap<String, Addr>,
    apps: Vec<AppBinary>,
    os: OsBinary,
}

impl FirmwareBuilder {
    /// Starts a builder for the given method and memory map.
    pub fn new(method: IsolationMethod, memory_map: MemoryMap, os: OsBinary) -> Self {
        FirmwareBuilder {
            method,
            memory_map,
            code: InstrStore::new(),
            data: Vec::new(),
            symbols: BTreeMap::new(),
            apps: Vec::new(),
            os,
        }
    }

    /// Emits a sequence of instructions starting at `addr`, returning the
    /// address just past the emitted sequence.
    pub fn emit(&mut self, addr: Addr, instrs: &[Instr]) -> Addr {
        let mut cursor = addr;
        for i in instrs {
            self.code.insert(cursor, *i);
            cursor += i.size_bytes();
        }
        cursor
    }

    /// Adds an initialised data segment.
    pub fn add_data(&mut self, addr: Addr, bytes: Vec<u8>) {
        self.data.push(DataSegment { addr, bytes });
    }

    /// Defines a global symbol.
    pub fn define_symbol(&mut self, name: impl Into<String>, addr: Addr) {
        self.symbols.insert(name.into(), addr);
    }

    /// Registers an application's metadata.
    pub fn add_app(&mut self, app: AppBinary) {
        self.apps.push(app);
    }

    /// Finishes the image (validating it).
    pub fn build(self) -> Result<Firmware, FirmwareError> {
        let fw = Firmware {
            method: self.method,
            memory_map: self.memory_map,
            code: Arc::new(self.code),
            data: self.data,
            symbols: self.symbols,
            apps: self.apps,
            os: self.os,
        };
        fw.validate()?;
        Ok(fw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
    use amulet_core::mpu_plan::MpuPlan;

    fn map() -> MemoryMap {
        MemoryMapPlanner::msp430fr5969()
            .plan(
                &OsImageSpec::default(),
                &[AppImageSpec::new("A", 0x400, 0x100, 0x80)],
            )
            .unwrap()
    }

    fn os_binary(map: &MemoryMap) -> OsBinary {
        OsBinary {
            mpu_config: MpuPlan::for_os_on(map).unwrap().config(&map.platform.mpu),
            initial_sp: map.os_initial_stack_pointer(),
        }
    }

    fn app_binary(map: &MemoryMap, handlers: BTreeMap<String, Addr>) -> AppBinary {
        let placement = map.apps[0].clone();
        AppBinary {
            name: "A".into(),
            index: 0,
            initial_sp: placement.initial_stack_pointer(),
            mpu_config: MpuPlan::for_app_on(map, 0)
                .unwrap()
                .config(&map.platform.mpu),
            placement,
            handlers,
            max_stack_estimate: Some(0x40),
        }
    }

    #[test]
    fn builder_emits_sequential_addresses() {
        let map = map();
        let mut b = FirmwareBuilder::new(IsolationMethod::Mpu, map.clone(), os_binary(&map));
        let start = map.apps[0].code.start;
        let end = b.emit(
            start,
            &[
                Instr::MovImm {
                    dst: Reg::R4,
                    imm: 1,
                }, // 4 bytes
                Instr::Mov {
                    dst: Reg::R5,
                    src: Reg::R4,
                }, // 2 bytes
                Instr::Ret, // 2 bytes
            ],
        );
        assert_eq!(end, start + 8);
        let fw = b.build().unwrap();
        assert_eq!(fw.instruction_count(), 3);
        assert_eq!(fw.code_size_bytes(), 8);
        assert_eq!(fw.code_span().unwrap(), AddrRange::new(start, start + 8));
    }

    #[test]
    fn validate_rejects_overlapping_instructions() {
        let map = map();
        let mut b = FirmwareBuilder::new(IsolationMethod::Mpu, map.clone(), os_binary(&map));
        let start = map.apps[0].code.start;
        b.emit(
            start,
            &[Instr::MovImm {
                dst: Reg::R4,
                imm: 1,
            }],
        );
        // Manually insert an instruction in the middle of the previous one.
        b.code.insert(start + 2, Instr::Ret);
        assert!(matches!(
            b.build(),
            Err(FirmwareError::OverlappingInstructions { .. })
        ));
    }

    #[test]
    fn validate_rejects_code_outside_the_app_region() {
        let map = map();
        let mut b = FirmwareBuilder::new(IsolationMethod::Mpu, map.clone(), os_binary(&map));
        let app_end = map.apps[0].code.end;
        b.emit(app_end - 2, &[Instr::Call { target: 0x4400 }]); // 4 bytes, spills over
        b.add_app(app_binary(&map, BTreeMap::new()));
        assert!(matches!(
            b.build(),
            Err(FirmwareError::CodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn validate_rejects_dangling_handlers_and_data_overlap() {
        let map = map();
        let start = map.apps[0].code.start;

        let mut b = FirmwareBuilder::new(IsolationMethod::Mpu, map.clone(), os_binary(&map));
        b.emit(start, &[Instr::Ret]);
        let mut handlers = BTreeMap::new();
        handlers.insert("main".to_string(), start + 0x100);
        b.add_app(app_binary(&map, handlers));
        assert!(matches!(
            b.build(),
            Err(FirmwareError::DanglingHandler { .. })
        ));

        let mut b = FirmwareBuilder::new(IsolationMethod::Mpu, map.clone(), os_binary(&map));
        b.emit(start, &[Instr::Ret]);
        b.add_data(start, vec![0; 4]);
        assert!(matches!(b.build(), Err(FirmwareError::DataOverlap { .. })));
    }

    #[test]
    fn symbols_and_app_lookup() {
        let map = map();
        let mut b =
            FirmwareBuilder::new(IsolationMethod::SoftwareOnly, map.clone(), os_binary(&map));
        let start = map.apps[0].code.start;
        b.emit(start, &[Instr::Ret]);
        b.define_symbol("A::main", start);
        let mut handlers = BTreeMap::new();
        handlers.insert("main".to_string(), start);
        b.add_app(app_binary(&map, handlers));
        let fw = b.build().unwrap();
        assert_eq!(fw.symbol("A::main"), Some(start));
        assert_eq!(fw.app("A").unwrap().handler("main"), Some(start));
        assert!(fw.app("B").is_none());
    }
}
