//! The instruction set executed by the simulated MCU.
//!
//! The Amulet firmware runs on a TI MSP430FR5969.  This simulator does not
//! reproduce the MSP430's bit-level instruction encodings — nothing in the
//! paper's evaluation depends on them — but it keeps the properties that the
//! evaluation *does* depend on:
//!
//! * a 16-bit, byte-addressed, load/store-with-offset register machine with
//!   sixteen registers of which `PC`, `SP` and `SR` are architectural,
//! * MSP430-flavoured cycle costs (register-to-register operations are cheap,
//!   memory operands and immediates add cycles, calls/returns and pushes are
//!   several cycles),
//! * every instruction occupies a whole number of 2-byte words so that code
//!   sizes, bounds and the linker's address arithmetic are real.
//!
//! The compiler in `amulet-aft` targets this ISA directly.

use std::fmt;

/// A machine register.
///
/// `R0`–`R2` are the architectural program counter, stack pointer and status
/// register, mirroring the MSP430 convention; `R4`–`R15` are general purpose.
/// (`R3`, the MSP430's constant generator, is treated as an ordinary scratch
/// register here.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Program counter.
    pub const PC: Reg = Reg(0);
    /// Stack pointer.
    pub const SP: Reg = Reg(1);
    /// Status register (flags).
    pub const SR: Reg = Reg(2);
    /// Scratch register used by compiler-inserted check sequences.
    pub const R3: Reg = Reg(3);
    /// First general-purpose register.
    pub const R4: Reg = Reg(4);
    /// General-purpose registers.
    pub const R5: Reg = Reg(5);
    /// General-purpose registers.
    pub const R6: Reg = Reg(6);
    /// General-purpose registers.
    pub const R7: Reg = Reg(7);
    /// General-purpose registers.
    pub const R8: Reg = Reg(8);
    /// General-purpose registers.
    pub const R9: Reg = Reg(9);
    /// General-purpose registers.
    pub const R10: Reg = Reg(10);
    /// General-purpose registers.
    pub const R11: Reg = Reg(11);
    /// Frame pointer by convention in AFT-generated code.
    pub const FP: Reg = Reg(12);
    /// General-purpose registers.
    pub const R13: Reg = Reg(13);
    /// Return-value / first-argument register by convention.
    pub const R14: Reg = Reg(14);
    /// Second argument / secondary scratch register by convention.
    pub const R15: Reg = Reg(15);

    /// Number of registers.
    pub const COUNT: usize = 16;

    /// Register index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether the register is general purpose (not PC/SP/SR).
    pub fn is_general_purpose(self) -> bool {
        self.0 >= 3
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::PC => write!(f, "pc"),
            Reg::SP => write!(f, "sp"),
            Reg::SR => write!(f, "sr"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

/// Width of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Word,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Word => 2,
        }
    }
}

/// Branch conditions, evaluated against the status-register flags that the
/// most recent `Cmp`/arithmetic instruction produced.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal (zero flag set).
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned lower (carry clear), MSP430 `JLO`.
    Lo,
    /// Unsigned higher or same (carry set), MSP430 `JHS`.
    Hs,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Negative flag set.
    Mi,
    /// Negative flag clear.
    Pl,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lo => "lo",
            Cond::Hs => "hs",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
        };
        f.write_str(s)
    }
}

/// Two-operand ALU operations (destination ← destination op source).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Multiplication (routed through the hardware multiplier peripheral on
    /// the real part; modelled as a slower ALU operation here).
    Mul,
    /// Signed division (software routine on the real part).
    Div,
    /// Signed remainder.
    Rem,
}

impl AluOp {
    /// Extra cycles beyond a plain register-to-register operation.
    pub fn extra_cycles(self) -> u64 {
        match self {
            AluOp::Mul => 7,
            AluOp::Div | AluOp::Rem => 15,
            _ => 0,
        }
    }
}

/// Single-operand operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Two's-complement negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical shift left by the encoded amount.
    Shl(u8),
    /// Logical shift right by the encoded amount.
    Shr(u8),
    /// Arithmetic shift right by the encoded amount.
    Sar(u8),
}

/// A decoded instruction.
///
/// Every variant's encoded size (in 16-bit words) is reported by
/// [`Instr::size_words`]; the linker uses it to lay code out at real
/// addresses, which is what makes the compiler-patched bounds meaningful.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `dst ← imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u16,
    },
    /// `dst ← src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
        /// Access width.
        width: Width,
    },
    /// `mem[base + offset] ← src`.
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i16,
        /// Access width.
        width: Width,
    },
    /// `dst ← mem[addr]` (absolute addressing).
    LoadAbs {
        /// Destination register.
        dst: Reg,
        /// Absolute address.
        addr: u16,
        /// Access width.
        width: Width,
    },
    /// `mem[addr] ← src` (absolute addressing).
    StoreAbs {
        /// Source register.
        src: Reg,
        /// Absolute address.
        addr: u16,
        /// Access width.
        width: Width,
    },
    /// Push a register onto the stack (`SP ← SP−2; mem[SP] ← src`).
    Push {
        /// Register to push.
        src: Reg,
    },
    /// Pop from the stack into a register.
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// `dst ← dst op src`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst ← dst op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Immediate right operand.
        imm: u16,
    },
    /// Single-operand operation on a register.
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Register operated on.
        reg: Reg,
    },
    /// Compare two registers (sets flags, discards the difference).
    Cmp {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Compare a register with an immediate.
    CmpImm {
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: u16,
    },
    /// Unconditional jump to an absolute address.
    Jmp {
        /// Target address.
        target: u16,
    },
    /// Conditional jump to an absolute address.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Target address.
        target: u16,
    },
    /// Indirect jump through a register.
    Br {
        /// Register holding the target address.
        reg: Reg,
    },
    /// Call an absolute address (pushes the return address).
    Call {
        /// Target address.
        target: u16,
    },
    /// Call through a register (pushes the return address).
    CallReg {
        /// Register holding the target address.
        reg: Reg,
    },
    /// Return (pops the return address into `PC`).
    Ret,
    /// Trap into the operating system with a service number.
    Syscall {
        /// System-call number (see `amulet-os::api`).
        num: u16,
    },
    /// Software fault: a compiler-inserted check failed.  The operand selects
    /// the fault class reported to the OS (encoded as a small integer).
    Fault {
        /// Fault code (`amulet_core::fault::FaultClass` discriminant index).
        code: u16,
    },
    /// Stop execution (used by standalone test programs and the idle loop).
    Halt,
    /// Do nothing for one cycle.
    Nop,
    /// Placeholder left where the static verifier removed a
    /// provably-redundant check sequence (a `CmpImm`+`Jcc` pair whose branch
    /// can never be taken).  It occupies the pair's encoded `words` so every
    /// surrounding address stays put, and charges the pair's fall-through
    /// `cycles` so the elided image is cycle-for-cycle identical to the
    /// unelided one — the saving is host work (one dispatch instead of two),
    /// not simulated time.
    Elided {
        /// Encoded size of the replaced sequence in 16-bit words.
        words: u8,
        /// Fall-through cycle cost of the replaced sequence.
        cycles: u8,
    },
}

impl Instr {
    /// Encoded size of the instruction in 16-bit words (1 word for
    /// register-only forms, 2 when an immediate, offset or absolute address
    /// extension word is needed) — mirroring the MSP430's format-I/format-II
    /// encodings closely enough for realistic code sizes.
    pub fn size_words(&self) -> u32 {
        match self {
            Instr::Mov { .. }
            | Instr::Push { .. }
            | Instr::Pop { .. }
            | Instr::Alu { .. }
            | Instr::Unary { .. }
            | Instr::Cmp { .. }
            | Instr::Br { .. }
            | Instr::CallReg { .. }
            | Instr::Ret
            | Instr::Halt
            | Instr::Nop => 1,
            Instr::Syscall { .. } | Instr::Fault { .. } => 1,
            Instr::MovImm { .. }
            | Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::LoadAbs { .. }
            | Instr::StoreAbs { .. }
            | Instr::AluImm { .. }
            | Instr::CmpImm { .. }
            | Instr::Jmp { .. }
            | Instr::Jcc { .. }
            | Instr::Call { .. } => 2,
            Instr::Elided { words, .. } => u32::from(*words),
        }
    }

    /// Encoded size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.size_words() * 2
    }

    /// Base cycle cost of the instruction (memory-system costs such as an
    /// FRAM wait state are added by the bus).
    pub fn base_cycles(&self) -> u64 {
        match self {
            Instr::Mov { .. } | Instr::Nop => 1,
            Instr::MovImm { .. } => 2,
            Instr::Alu { op, .. } => 1 + op.extra_cycles(),
            Instr::AluImm { op, .. } => 2 + op.extra_cycles(),
            Instr::Unary { .. } => 1,
            Instr::Cmp { .. } => 1,
            Instr::CmpImm { .. } => 2,
            Instr::Load { .. } | Instr::LoadAbs { .. } => 3,
            Instr::Store { .. } | Instr::StoreAbs { .. } => 4,
            Instr::Push { .. } => 3,
            Instr::Pop { .. } => 2,
            Instr::Jmp { .. } => 2,
            Instr::Jcc { .. } => 2,
            Instr::Br { .. } => 2,
            Instr::Call { .. } => 5,
            Instr::CallReg { .. } => 5,
            Instr::Ret => 4,
            Instr::Syscall { .. } => 2,
            Instr::Fault { .. } => 2,
            Instr::Halt => 1,
            Instr::Elided { cycles, .. } => u64::from(*cycles),
        }
    }

    /// Whether the instruction reads or writes data memory (used by the
    /// profiler to count "memory accesses" the way the ARP does).
    pub fn touches_data_memory(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::LoadAbs { .. }
                | Instr::StoreAbs { .. }
                | Instr::Push { .. }
                | Instr::Pop { .. }
        )
    }
}

/// One `CmpImm` + `Jcc` bound check, the two-instruction shape the AFT
/// compiler emits for every software pointer/bounds/return check.  Used as
/// a component of [`SuperOp`] fused sequences.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckBranch {
    /// Register the `CmpImm` compares.
    pub a: Reg,
    /// Immediate (linker-patched bound) it compares against.
    pub imm: u16,
    /// Branch condition of the `Jcc`.
    pub cond: Cond,
    /// Branch target of the `Jcc` (the fault stub, for compiler checks).
    pub target: u16,
}

/// A fused superinstruction: a short, hot multi-instruction sequence the
/// AFT compiler emits verbatim, packed into one dispatch.
///
/// Fusion is *derived* state layered over the [`crate::code::InstrStore`]:
/// the component instructions keep their slots (so branches into the
/// interior of a sequence still land on real instructions and execute
/// unfused), the v1 wire format never sees a `SuperOp`, and the executor
/// ([`crate::cpu::Cpu::run_block`]) preserves per-instruction timer-tick,
/// counter and fault semantics exactly — a fault or taken branch
/// mid-sequence stops after the components that actually retired.
///
/// The combined metadata (summed size/cycles, component count) does not
/// fit [`crate::code::InstrMeta`]'s packed fields (4-bit size), so each
/// variant precomputes its totals through [`SuperOp::size_bytes`],
/// [`SuperOp::base_cycles`] and [`SuperOp::components`] instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuperOp {
    /// One bound check: `CmpImm; Jcc` (2 instructions).
    Check(CheckBranch),
    /// Two adjacent bound checks — the AFT's lower+upper data-pointer and
    /// function-pointer double pair (4 instructions).
    Check2(CheckBranch, CheckBranch),
    /// Loop/bookkeeping tail: `AluImm Add dst, #imm` followed by a bound
    /// check (3 instructions).
    AddCheck {
        /// Destination (and left operand) of the `Add`.
        dst: Reg,
        /// Immediate added.
        imm: u16,
        /// The trailing `CmpImm` + `Jcc` pair.
        check: CheckBranch,
    },
    /// Call prologue: `Push push; Mov dst ← src` (2 instructions; the AFT
    /// emits `Push FP; Mov FP ← SP`).
    PushMov {
        /// Register pushed.
        push: Reg,
        /// Destination of the `Mov`.
        dst: Reg,
        /// Source of the `Mov`.
        src: Reg,
    },
    /// Epilogue head: `Mov dst ← src; Pop pop` (2 instructions; the AFT
    /// emits `Mov SP ← FP; Pop FP`).
    MovPop {
        /// Destination of the `Mov`.
        dst: Reg,
        /// Source of the `Mov`.
        src: Reg,
        /// Destination of the `Pop`.
        pop: Reg,
    },
    /// Two adjacent [`Instr::Elided`] placeholders — a fully-elided double
    /// bound check — collapsed into one no-op dispatch (2 instructions).
    /// This is how fusion composes with PR 9 check elision.
    ElidedPair {
        /// Encoded words of the first placeholder.
        w1: u8,
        /// Fall-through cycles of the first placeholder.
        c1: u8,
        /// Encoded words of the second placeholder.
        w2: u8,
        /// Fall-through cycles of the second placeholder.
        c2: u8,
    },
}

impl SuperOp {
    /// Number of component instructions the sequence covers.  The executor
    /// only enters a fused sequence when at least this much step budget
    /// remains; otherwise the head executes unfused, so any partition of a
    /// run into blocks retires the identical instruction sequence.
    pub fn components(&self) -> u64 {
        match self {
            SuperOp::Check(_) | SuperOp::PushMov { .. } | SuperOp::MovPop { .. } => 2,
            SuperOp::ElidedPair { .. } => 2,
            SuperOp::AddCheck { .. } => 3,
            SuperOp::Check2(..) => 4,
        }
    }

    /// Summed encoded size of the components, in bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            SuperOp::Check(_) => 8,
            SuperOp::Check2(..) => 16,
            SuperOp::AddCheck { .. } => 12,
            SuperOp::PushMov { .. } | SuperOp::MovPop { .. } => 4,
            SuperOp::ElidedPair { w1, w2, .. } => 2 * (u32::from(*w1) + u32::from(*w2)),
        }
    }

    /// Summed fall-through base cycle cost of the components (`Jcc` costs
    /// the same taken or not, so this is also the taken-branch total).
    pub fn base_cycles(&self) -> u64 {
        match self {
            SuperOp::Check(_) => 4,
            SuperOp::Check2(..) => 8,
            SuperOp::AddCheck { .. } => 6,
            SuperOp::PushMov { .. } => 4,
            SuperOp::MovPop { .. } => 3,
            SuperOp::ElidedPair { c1, c2, .. } => u64::from(*c1) + u64::from(*c2),
        }
    }
}

impl fmt::Display for SuperOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperOp::Check(c) => write!(f, "fused.check {}, j{} {:#06x}", c.a, c.cond, c.target),
            SuperOp::Check2(lo, hi) => write!(
                f,
                "fused.check2 {}/j{}, {}/j{}",
                lo.a, lo.cond, hi.a, hi.cond
            ),
            SuperOp::AddCheck { dst, imm, check } => write!(
                f,
                "fused.addcheck {dst}+=#{imm:#x}, j{} {:#06x}",
                check.cond, check.target
            ),
            SuperOp::PushMov { push, dst, src } => {
                write!(f, "fused.pushmov push {push}; mov {src}, {dst}")
            }
            SuperOp::MovPop { dst, src, pop } => {
                write!(f, "fused.movpop mov {src}, {dst}; pop {pop}")
            }
            SuperOp::ElidedPair { w1, c1, w2, c2 } => {
                write!(f, "fused.elided {w1}w/{c1}c+{w2}w/{c2}c")
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovImm { dst, imm } => write!(f, "mov   #{imm:#x}, {dst}"),
            Instr::Mov { dst, src } => write!(f, "mov   {src}, {dst}"),
            Instr::Load {
                dst,
                base,
                offset,
                width,
            } => {
                write!(f, "ld{}   {offset}({base}), {dst}", wsuffix(*width))
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                write!(f, "st{}   {src}, {offset}({base})", wsuffix(*width))
            }
            Instr::LoadAbs { dst, addr, width } => {
                write!(f, "ld{}   &{addr:#06x}, {dst}", wsuffix(*width))
            }
            Instr::StoreAbs { src, addr, width } => {
                write!(f, "st{}   {src}, &{addr:#06x}", wsuffix(*width))
            }
            Instr::Push { src } => write!(f, "push  {src}"),
            Instr::Pop { dst } => write!(f, "pop   {dst}"),
            Instr::Alu { op, dst, src } => {
                write!(f, "{}   {src}, {dst}", format!("{op:?}").to_lowercase())
            }
            Instr::AluImm { op, dst, imm } => {
                write!(f, "{}  #{imm:#x}, {dst}", format!("{op:?}").to_lowercase())
            }
            Instr::Unary { op, reg } => write!(f, "{op:?} {reg}"),
            Instr::Cmp { a, b } => write!(f, "cmp   {b}, {a}"),
            Instr::CmpImm { a, imm } => write!(f, "cmp   #{imm:#x}, {a}"),
            Instr::Jmp { target } => write!(f, "jmp   {target:#06x}"),
            Instr::Jcc { cond, target } => write!(f, "j{cond}   {target:#06x}"),
            Instr::Br { reg } => write!(f, "br    {reg}"),
            Instr::Call { target } => write!(f, "call  {target:#06x}"),
            Instr::CallReg { reg } => write!(f, "call  {reg}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Syscall { num } => write!(f, "sys   #{num}"),
            Instr::Fault { code } => write!(f, "fault #{code}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
            Instr::Elided { words, cycles } => {
                write!(f, "elided {words}w/{cycles}c")
            }
        }
    }
}

fn wsuffix(width: Width) -> &'static str {
    match width {
        Width::Byte => "b",
        Width::Word => "w",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names() {
        assert_eq!(Reg::PC.to_string(), "pc");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::R4.to_string(), "r4");
        assert!(Reg::R4.is_general_purpose());
        assert!(!Reg::SP.is_general_purpose());
    }

    #[test]
    fn sizes_are_one_or_two_words() {
        let one_word = [Instr::Ret, Instr::Nop, Instr::Push { src: Reg::R4 }];
        let two_words = [
            Instr::MovImm {
                dst: Reg::R4,
                imm: 7,
            },
            Instr::Call { target: 0x4400 },
            Instr::CmpImm {
                a: Reg::R4,
                imm: 0x5000,
            },
        ];
        for i in one_word {
            assert_eq!(i.size_words(), 1, "{i}");
        }
        for i in two_words {
            assert_eq!(i.size_words(), 2, "{i}");
        }
    }

    #[test]
    fn memory_instructions_cost_more_than_register_ones() {
        let mov = Instr::Mov {
            dst: Reg::R4,
            src: Reg::R5,
        };
        let load = Instr::Load {
            dst: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        };
        let store = Instr::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        };
        assert!(load.base_cycles() > mov.base_cycles());
        assert!(store.base_cycles() > load.base_cycles());
    }

    #[test]
    fn check_sequence_costs_match_core_policy() {
        // A compiler-inserted lower-bound check is `cmp #imm, reg` (2 cycles)
        // + a not-taken conditional jump (2 cycles) plus the pointer
        // materialisation; the analytic constants in amulet-core assume 6
        // cycles for the lower check, so the emergent sequence must be in the
        // same ballpark.
        let cmp = Instr::CmpImm {
            a: Reg::R4,
            imm: 0x8000,
        };
        let jcc = Instr::Jcc {
            cond: Cond::Lo,
            target: 0x4400,
        };
        let total = cmp.base_cycles() + jcc.base_cycles();
        assert!(
            (4..=7).contains(&total),
            "check sequence costs {total} cycles"
        );
    }

    #[test]
    fn data_memory_classification() {
        assert!(Instr::Push { src: Reg::R4 }.touches_data_memory());
        assert!(Instr::LoadAbs {
            dst: Reg::R4,
            addr: 0x1C00,
            width: Width::Word
        }
        .touches_data_memory());
        assert!(!Instr::Jmp { target: 0 }.touches_data_memory());
        assert!(!Instr::Syscall { num: 1 }.touches_data_memory());
    }

    #[test]
    fn elided_placeholder_preserves_layout_and_cycles() {
        // An elided bound check replaces `cmp #imm, rN` (2 words, 2 cycles)
        // + `jcc` (2 words, 2 cycles fall-through): the placeholder must
        // report exactly the pair's size and cost, and must not count as a
        // data-memory access.
        let e = Instr::Elided {
            words: 4,
            cycles: 4,
        };
        assert_eq!(e.size_words(), 4);
        assert_eq!(e.base_cycles(), 4);
        assert!(!e.touches_data_memory());
        assert_eq!(e.to_string(), "elided 4w/4c");
    }

    #[test]
    fn superop_totals_match_their_components() {
        let check = CheckBranch {
            a: Reg::R14,
            imm: 0x4400,
            cond: Cond::Lo,
            target: 0x4000,
        };
        let cmp = Instr::CmpImm {
            a: Reg::R14,
            imm: 0x4400,
        };
        let jcc = Instr::Jcc {
            cond: Cond::Lo,
            target: 0x4000,
        };
        let pair_bytes = cmp.size_bytes() + jcc.size_bytes();
        let pair_cycles = cmp.base_cycles() + jcc.base_cycles();

        let one = SuperOp::Check(check);
        assert_eq!(one.components(), 2);
        assert_eq!(one.size_bytes(), pair_bytes);
        assert_eq!(one.base_cycles(), pair_cycles);

        let two = SuperOp::Check2(check, check);
        assert_eq!(two.components(), 4);
        assert_eq!(two.size_bytes(), 2 * pair_bytes);
        assert_eq!(two.base_cycles(), 2 * pair_cycles);

        let add = Instr::AluImm {
            op: AluOp::Add,
            dst: Reg::FP,
            imm: 1,
        };
        let addcheck = SuperOp::AddCheck {
            dst: Reg::FP,
            imm: 1,
            check,
        };
        assert_eq!(addcheck.components(), 3);
        assert_eq!(addcheck.size_bytes(), add.size_bytes() + pair_bytes);
        assert_eq!(addcheck.base_cycles(), add.base_cycles() + pair_cycles);

        let prologue = SuperOp::PushMov {
            push: Reg::FP,
            dst: Reg::FP,
            src: Reg::SP,
        };
        assert_eq!(prologue.components(), 2);
        assert_eq!(prologue.size_bytes(), 4);
        assert_eq!(
            prologue.base_cycles(),
            Instr::Push { src: Reg::FP }.base_cycles()
                + Instr::Mov {
                    dst: Reg::FP,
                    src: Reg::SP
                }
                .base_cycles()
        );

        let epilogue = SuperOp::MovPop {
            dst: Reg::SP,
            src: Reg::FP,
            pop: Reg::FP,
        };
        assert_eq!(epilogue.components(), 2);
        assert_eq!(epilogue.base_cycles(), 1 + 2);

        let elided = SuperOp::ElidedPair {
            w1: 4,
            c1: 4,
            w2: 4,
            c2: 4,
        };
        assert_eq!(elided.components(), 2);
        assert_eq!(elided.size_bytes(), 16);
        assert_eq!(elided.base_cycles(), 8);
        assert_eq!(elided.to_string(), "fused.elided 4w/4c+4w/4c");
    }

    #[test]
    fn widths() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Word.bytes(), 2);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Load {
            dst: Reg::R4,
            base: Reg::FP,
            offset: -4,
            width: Width::Word,
        };
        assert_eq!(i.to_string(), "ldw   -4(r12), r4");
        assert_eq!(Instr::Fault { code: 3 }.to_string(), "fault #3");
    }
}
