//! # amulet-mcu
//!
//! A cycle-counted simulator of TI MSP430FR-class microcontrollers
//! (the Amulet wearable's FR5969, and the larger FR5994-class profile),
//! built for the reproduction of "Application Memory Isolation on
//! Ultra-Low-Power MCUs" (USENIX ATC 2018).
//!
//! The simulator models exactly the pieces of the hardware the paper's
//! evaluation depends on:
//!
//! * the platform memory map (peripheral registers, bootstrap loader,
//!   InfoMem, SRAM, main FRAM, interrupt vectors), taken from the
//!   [`amulet_core::layout::PlatformSpec`] the device is built for —
//!   [`bus`];
//! * two Memory Protection Unit backends — [`mpu`]: the FR5969's limited
//!   segmented part (three main-memory segments defined by two movable
//!   boundaries plus a pinned InfoMem segment, per-segment R/W/X bits, a
//!   password/lock register protocol, and *no* coverage of SRAM or
//!   peripherals) and a Tock/Cortex-M-style region MPU (independent
//!   base/limit regions, deny-by-default over FRAM, InfoMem and SRAM) used
//!   by region-MPU platforms such as the FR5994-class profile;
//! * a 16-bit register machine with MSP430-flavoured cycle costs executing
//!   the code produced by the `amulet-aft` compiler — [`isa`], [`cpu`];
//! * the hardware timer used for the paper's measurements, with its 16-cycle
//!   read-out precision — [`timer`];
//! * firmware images carrying per-application bounds, entry points and MPU
//!   register values — [`firmware`];
//! * the flat, word-indexed decoded-instruction store that makes
//!   instruction fetch O(1) — [`code`];
//! * the assembled device — [`device`].
//!
//! See `DESIGN.md` at the repository root for the substitution argument: the
//! ISA is not bit-compatible with the MSP430, but every quantity the paper
//! measures (instruction counts of check sequences, MPU register-write
//! counts, cycle ratios) is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod code;
pub mod cpu;
pub mod device;
pub mod firmware;
pub mod isa;
pub mod mpu;
pub mod serial;
pub mod timer;

pub use bus::{Bus, BusFault, BusFaultCause, BusStats, Region};
pub use code::{FuseReport, InstrMeta, InstrStore};
pub use cpu::{Cpu, CpuStats, FaultInfo, StepEvent, HANDLER_RETURN};
pub use device::{Device, RunExit, StopReason};
pub use firmware::{AppBinary, DataSegment, Firmware, FirmwareBuilder, FirmwareError, OsBinary};
pub use isa::{AluOp, CheckBranch, Cond, Instr, Reg, SuperOp, UnaryOp, Width};
pub use mpu::{ExtendedMpu, Mpu, MpuDecision, MpuSegment, RegionMpu, RegionSlot};
pub use serial::{decode_firmware, encode_firmware, verify_envelope, FORMAT_VERSION, MAGIC};
pub use timer::{Timer, TIMER_PRECISION_CYCLES};
