//! The FR5969-style Memory Protection Unit.
//!
//! The hardware modelled here has exactly the shortcomings the paper lists:
//!
//! 1. it supports too few distinct regions to sandbox each application — only
//!    three main-memory segments defined by two movable boundaries, plus a
//!    segment pinned to InfoMem;
//! 2. it leaves certain memory unprotected — SRAM, the peripheral registers,
//!    the bootstrap loader and the interrupt vectors are simply outside its
//!    jurisdiction;
//! 3. its configuration lives behind an arcane password/lock protocol in
//!    memory-mapped registers.
//!
//! The registers follow the MSP430FR5969 layout: `MPUCTL0` (password +
//! enable + lock), `MPUCTL1` (violation flags), `MPUSEGB2`/`MPUSEGB1`
//! (segment boundaries, address ÷ 16) and `MPUSAM` (per-segment R/W/X bits).

use amulet_core::addr::{Addr, AddrRange};
use amulet_core::mpu_plan::{MpuPlan, MpuRegisterValues};
use amulet_core::perm::{AccessKind, Perm};

/// Base address of the MPU register block.
pub const MPU_BASE: Addr = 0x05A0;
/// `MPUCTL0`: password, enable, segment-1/2/3 lock.
pub const MPUCTL0: Addr = 0x05A0;
/// `MPUCTL1`: violation flags (segment 1/2/3 and InfoMem).
pub const MPUCTL1: Addr = 0x05A2;
/// `MPUSEGB2`: boundary between segments 2 and 3, as address ÷ 16.
pub const MPUSEGB2: Addr = 0x05A4;
/// `MPUSEGB1`: boundary between segments 1 and 2, as address ÷ 16.
pub const MPUSEGB1: Addr = 0x05A6;
/// `MPUSAM`: segment access rights.
pub const MPUSAM: Addr = 0x05A8;
/// One past the last MPU register address.
pub const MPU_END: Addr = 0x05AA;

/// Password that must be present in the high byte of any `MPUCTL0` write.
pub const MPU_PASSWORD: u16 = 0xA5;

/// Which MPU segment an address falls into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpuSegment {
    /// The pinned InfoMem segment ("segment 0" in the paper's description).
    Info,
    /// Main memory below boundary 1.
    Seg1,
    /// Main memory between boundary 1 and boundary 2.
    Seg2,
    /// Main memory at or above boundary 2.
    Seg3,
}

/// Outcome of consulting an MPU backend about an access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpuDecision {
    /// The address is outside the MPU's jurisdiction (SRAM, peripherals,
    /// bootstrap loader, vectors): the MPU neither allows nor denies it.
    NotCovered,
    /// The access is permitted by the current segment configuration.
    Allowed(MpuSegment),
    /// The access violates the current segment configuration.
    Violation(MpuSegment),
    /// Region backend: the access is permitted by the region in this slot.
    AllowedRegion(usize),
    /// Region backend: the access is denied — either the matching region
    /// (`Some(slot)`) withholds the permission, or no region covers the
    /// address at all (`None`; region MPUs deny by default inside their
    /// jurisdiction).
    ViolationRegion(Option<usize>),
}

impl MpuDecision {
    /// True unless the decision is a violation.
    pub fn permits(&self) -> bool {
        !matches!(
            self,
            MpuDecision::Violation(_) | MpuDecision::ViolationRegion(_)
        )
    }
}

/// Error writing an MPU register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpuRegisterError {
    /// An `MPUCTL0` write without the `0xA5` password; on real hardware this
    /// causes a power-up-clear reset.
    BadPassword,
    /// A configuration write while the lock bit is set.
    Locked,
    /// An unprivileged (application) store to a privileged-only register
    /// block — the region MPU's registers live in protected peripheral
    /// space, like the Cortex-M PPB, and only the OS may program them.
    Privileged,
}

/// The MPU register file and access-checking logic.
#[derive(Clone, Debug)]
pub struct Mpu {
    /// Whether segment checking is enabled (`MPUENA`).
    pub enabled: bool,
    /// Whether the configuration is locked until the next reset (`MPULOCK`).
    pub locked: bool,
    /// Boundary between segments 1 and 2 (byte address).
    pub boundary1: Addr,
    /// Boundary between segments 2 and 3 (byte address).
    pub boundary2: Addr,
    /// Per-segment permissions, indexed by [`MpuSegment`].
    pub seg_info: Perm,
    /// Segment 1 permissions.
    pub seg1: Perm,
    /// Segment 2 permissions.
    pub seg2: Perm,
    /// Segment 3 permissions.
    pub seg3: Perm,
    /// Latched violation flags (`MPUSEGxIFG` in `MPUCTL1`).
    pub violation_flags: u16,
    /// The main-memory range the MPU covers.
    main_range: AddrRange,
    /// The InfoMem range (pinned segment).
    info_range: AddrRange,
    /// Count of configuration writes, for the evaluation's context-switch
    /// accounting.
    pub config_writes: u64,
    /// Count of access checks performed **by this backend**.  When the
    /// bus's access-attribute cache is enabled (the default), permitted
    /// accesses are satisfied from the cache without consulting the
    /// backend, so this counts oracle consultations (denied or
    /// cache-ineligible accesses), not every bus access; disable the
    /// cache via [`crate::bus::Bus::set_attr_cache_enabled`] to count
    /// every policed access.
    pub checks: u64,
    /// Count of violations detected (exact regardless of the attribute
    /// cache: denied accesses always reach the backend).
    pub violations: u64,
}

impl Mpu {
    /// Creates a disabled MPU covering the given main-FRAM and InfoMem
    /// ranges.
    pub fn new(main_range: AddrRange, info_range: AddrRange) -> Self {
        Mpu {
            enabled: false,
            locked: false,
            boundary1: main_range.start,
            boundary2: main_range.start,
            seg_info: Perm::RWX,
            seg1: Perm::RWX,
            seg2: Perm::RWX,
            seg3: Perm::RWX,
            violation_flags: 0,
            main_range,
            info_range,
            config_writes: 0,
            checks: 0,
            violations: 0,
        }
    }

    /// Creates the MPU for the MSP430FR5969 memory map.
    pub fn msp430fr5969() -> Self {
        let spec = amulet_core::layout::PlatformSpec::msp430fr5969();
        Mpu::new(spec.fram, spec.info_mem)
    }

    /// Resets the MPU to its power-on state (disabled, unlocked, no
    /// violations).
    pub fn reset(&mut self) {
        let main = self.main_range;
        let info = self.info_range;
        let (writes, checks, violations) = (self.config_writes, self.checks, self.violations);
        *self = Mpu::new(main, info);
        self.config_writes = writes;
        self.checks = checks;
        self.violations = violations;
    }

    /// Which segment `addr` belongs to, or `None` when the MPU does not cover
    /// it.
    pub fn segment_of(&self, addr: Addr) -> Option<MpuSegment> {
        if self.info_range.contains(addr) {
            Some(MpuSegment::Info)
        } else if self.main_range.contains(addr) {
            if addr < self.boundary1 {
                Some(MpuSegment::Seg1)
            } else if addr < self.boundary2 {
                Some(MpuSegment::Seg2)
            } else {
                Some(MpuSegment::Seg3)
            }
        } else {
            None
        }
    }

    /// Permissions currently granted to the given segment.
    pub fn segment_perm(&self, seg: MpuSegment) -> Perm {
        match seg {
            MpuSegment::Info => self.seg_info,
            MpuSegment::Seg1 => self.seg1,
            MpuSegment::Seg2 => self.seg2,
            MpuSegment::Seg3 => self.seg3,
        }
    }

    /// Checks an access of `kind` at `addr`, latching a violation flag when
    /// it is denied.
    pub fn check(&mut self, addr: Addr, kind: AccessKind) -> MpuDecision {
        self.checks += 1;
        if !self.enabled {
            return MpuDecision::NotCovered;
        }
        let Some(seg) = self.segment_of(addr) else {
            return MpuDecision::NotCovered;
        };
        let perm = self.segment_perm(seg);
        if perm.allows(kind.required_perm()) {
            MpuDecision::Allowed(seg)
        } else {
            self.violations += 1;
            self.violation_flags |= match seg {
                MpuSegment::Seg1 => 1 << 0,
                MpuSegment::Seg2 => 1 << 1,
                MpuSegment::Seg3 => 1 << 2,
                MpuSegment::Info => 1 << 3,
            };
            MpuDecision::Violation(seg)
        }
    }

    /// Non-mutating variant of [`Mpu::check`] for diagnostics and tests.
    pub fn would_allow(&self, addr: Addr, kind: AccessKind) -> bool {
        if !self.enabled {
            return true;
        }
        match self.segment_of(addr) {
            None => true,
            Some(seg) => self.segment_perm(seg).allows(kind.required_perm()),
        }
    }

    /// Applies a full register-value set (as produced by
    /// [`MpuPlan::register_values`]) in the order a context-switch routine
    /// writes them: boundaries, access bits, control word.
    pub fn apply_registers(&mut self, regs: MpuRegisterValues) -> Result<(), MpuRegisterError> {
        self.write_register(MPUSEGB1, regs.mpusegb1)?;
        self.write_register(MPUSEGB2, regs.mpusegb2)?;
        self.write_register(MPUSAM, regs.mpusam)?;
        self.write_register(MPUCTL0, regs.mpuctl0)?;
        Ok(())
    }

    /// Applies an abstract plan directly (used by the "advanced MPU"
    /// ablation, which needs more segments than the register file encodes).
    pub fn apply_plan_unchecked(&mut self, plan: &MpuPlan) {
        // Collapse the plan into the 3-segment hardware when possible; the
        // advanced 4-segment plan is handled by the extended simulator mode
        // in `ExtendedMpu`, so here we only honour the standard shape.
        self.boundary1 = plan.boundary1;
        self.boundary2 = plan.boundary2;
        for seg in &plan.segments {
            match seg.index {
                0 => self.seg_info = seg.perm,
                1 => self.seg1 = seg.perm,
                2 => self.seg2 = seg.perm,
                3 => self.seg3 = seg.perm,
                _ => {}
            }
        }
        self.enabled = true;
        self.config_writes += MpuRegisterValues::WRITE_COUNT as u64;
    }

    /// True when `addr` addresses one of the MPU's memory-mapped registers.
    pub fn owns_register(addr: Addr) -> bool {
        (MPU_BASE..MPU_END).contains(&addr)
    }

    /// Reads a memory-mapped MPU register.
    pub fn read_register(&self, addr: Addr) -> u16 {
        match addr & !1 {
            MPUCTL0 => {
                let mut v = 0x9600; // reads return 0x96 in the password byte
                if self.enabled {
                    v |= 0x0001;
                }
                if self.locked {
                    v |= 0x0002;
                }
                v
            }
            MPUCTL1 => self.violation_flags,
            MPUSEGB2 => (self.boundary2 >> 4) as u16,
            MPUSEGB1 => (self.boundary1 >> 4) as u16,
            MPUSAM => {
                self.seg1.to_bits()
                    | (self.seg2.to_bits() << 4)
                    | (self.seg3.to_bits() << 8)
                    | (self.seg_info.to_bits() << 12)
            }
            _ => 0,
        }
    }

    /// Writes a memory-mapped MPU register, enforcing the password and lock
    /// protocol.
    pub fn write_register(&mut self, addr: Addr, value: u16) -> Result<(), MpuRegisterError> {
        if self.locked {
            return Err(MpuRegisterError::Locked);
        }
        match addr & !1 {
            MPUCTL0 => {
                if value >> 8 != MPU_PASSWORD {
                    return Err(MpuRegisterError::BadPassword);
                }
                self.enabled = value & 0x0001 != 0;
                self.locked = value & 0x0002 != 0;
            }
            MPUCTL1 => {
                // Writing clears the violation flags (write-1-to-clear on the
                // real part; we clear unconditionally for simplicity).
                self.violation_flags = 0;
            }
            MPUSEGB2 => {
                self.boundary2 = (value as Addr) << 4;
            }
            MPUSEGB1 => {
                self.boundary1 = (value as Addr) << 4;
            }
            MPUSAM => {
                self.seg1 = Perm::from_bits(value & 0x7);
                self.seg2 = Perm::from_bits((value >> 4) & 0x7);
                self.seg3 = Perm::from_bits((value >> 8) & 0x7);
                self.seg_info = Perm::from_bits((value >> 12) & 0x7);
            }
            _ => {}
        }
        self.config_writes += 1;
        Ok(())
    }
}

/// Base address of the region-MPU register block (present on region-MPU
/// platforms such as the FR5994-class profile).
pub const RMPU_BASE: Addr = 0x05B0;
/// `RMPUCTL`: bit 0 enables region checking.
pub const RMPU_CTL: Addr = 0x05B0;
/// `RMPURNR`: selects which region slot `RMPURBAR`/`RMPURLAR` address.
pub const RMPU_RNR: Addr = 0x05B2;
/// `RMPURBAR`: selected region's base address ÷ 16.
pub const RMPU_RBAR: Addr = 0x05B4;
/// `RMPURLAR`: selected region's limit ÷ 16 in bits 0..12, permissions in
/// bits 12..15, enable in bit 15.
pub const RMPU_RLAR: Addr = 0x05B6;
/// One past the last region-MPU register address.
pub const RMPU_END: Addr = 0x05B8;

/// One slot of the region MPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionSlot {
    /// Address range the slot covers.
    pub range: AddrRange,
    /// Permissions the slot grants.
    pub perm: Perm,
    /// Whether the slot participates in checking.
    pub enabled: bool,
}

impl Default for RegionSlot {
    fn default() -> Self {
        RegionSlot {
            range: AddrRange::empty(),
            perm: Perm::NONE,
            enabled: false,
        }
    }
}

/// A Tock/Cortex-M-style region MPU: a fixed number of base/limit region
/// slots with per-slot R/W/X permissions.
///
/// Unlike the FR5969's segmented part, this backend **denies by default**:
/// inside its jurisdiction an access no enabled region grants is a
/// violation.  The base jurisdiction is main FRAM, InfoMem and SRAM,
/// like its classic Cortex-M inspirations — peripheral space, the
/// bootstrap loader and the vectors stay unpoliced there, the reason the
/// software keeps its function-pointer checks on the FR5994 profile.
/// ARMv8-M-class profiles extend the jurisdiction over those ranges too
/// ([`RegionMpu::with_extended_jurisdiction`]), which is what lets their
/// check policy drop the function-pointer check.  There is no password protocol, but the
/// register block itself is **privileged-only** (like the Cortex-M PPB):
/// application stores through the bus fault, and only the OS's trusted
/// switch path ([`crate::bus::Bus::install_mpu_config`]) programs it
/// (select a slot with `RMPURNR`, then write `RMPURBAR`/`RMPURLAR`).
#[derive(Clone, Debug)]
pub struct RegionMpu {
    /// Whether region checking is enabled.
    pub enabled: bool,
    /// The region slots.
    pub slots: Vec<RegionSlot>,
    /// The slot index selected by `RMPURNR`.
    pub selected: usize,
    /// The main-memory range the MPU polices.
    main_range: AddrRange,
    /// The InfoMem range (also policed).
    info_range: AddrRange,
    /// The SRAM range (also policed, unlike the segmented part).
    sram_range: AddrRange,
    /// Extra ranges the profile's jurisdiction extends over — peripheral
    /// space, the boot ROM and the vector table on ARMv8-M-style profiles
    /// that police the full platform space.  Empty reproduces the classic
    /// Cortex-M shape whose MPU stops at SRAM.
    extended_ranges: Vec<AddrRange>,
    /// Count of configuration writes (context-switch accounting).
    pub config_writes: u64,
    /// Count of access checks performed **by this backend** — with the
    /// bus's attribute cache enabled this counts oracle consultations
    /// only; see [`Mpu::checks`] for the full caveat.
    pub checks: u64,
    /// Count of violations detected (exact regardless of the attribute
    /// cache: denied accesses always reach the backend).
    pub violations: u64,
}

impl RegionMpu {
    /// Creates a disabled region MPU with `slots` empty regions, policing
    /// the given main-FRAM, InfoMem and SRAM ranges.
    pub fn new(
        slots: usize,
        main_range: AddrRange,
        info_range: AddrRange,
        sram_range: AddrRange,
    ) -> Self {
        RegionMpu {
            enabled: false,
            slots: vec![RegionSlot::default(); slots],
            selected: 0,
            main_range,
            info_range,
            sram_range,
            extended_ranges: Vec::new(),
            config_writes: 0,
            checks: 0,
            violations: 0,
        }
    }

    /// Extends the MPU's deny-by-default jurisdiction over the given
    /// additional ranges — peripheral space, boot ROM, vector table — for
    /// profiles that police the **full platform space** (the
    /// Cortex-M33-class profile; closes the "unpoliced region-MPU
    /// peripheral space" gap, and leaves a checkless corrupted code
    /// pointer nowhere to escape to).
    pub fn with_extended_jurisdiction(mut self, ranges: &[AddrRange]) -> Self {
        self.extended_ranges = ranges.to_vec();
        self
    }

    /// The address ranges this backend polices (deny-by-default inside
    /// them when enabled).  The attribute-cache painter consults this
    /// instead of hardcoding any particular jurisdiction.
    pub fn jurisdiction(&self) -> impl Iterator<Item = AddrRange> + '_ {
        [self.main_range, self.info_range, self.sram_range]
            .into_iter()
            .chain(self.extended_ranges.iter().copied())
    }

    /// Whether the jurisdiction extends beyond FRAM/InfoMem/SRAM, over
    /// the platform's peripheral/boot-ROM/vector space.
    pub fn covers_full_platform(&self) -> bool {
        !self.extended_ranges.is_empty()
    }

    /// Whether `addr` falls inside the MPU's jurisdiction.
    pub fn covers(&self, addr: Addr) -> bool {
        self.jurisdiction().any(|r| r.contains(addr))
    }

    /// The enabled slot covering `addr`, if any.
    pub fn slot_of(&self, addr: Addr) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.enabled && s.range.contains(addr))
    }

    /// Checks an access of `kind` at `addr`.
    pub fn check(&mut self, addr: Addr, kind: AccessKind) -> MpuDecision {
        self.checks += 1;
        if !self.enabled || !self.covers(addr) {
            return MpuDecision::NotCovered;
        }
        match self.slot_of(addr) {
            Some(slot) if self.slots[slot].perm.allows(kind.required_perm()) => {
                MpuDecision::AllowedRegion(slot)
            }
            matched => {
                self.violations += 1;
                MpuDecision::ViolationRegion(matched)
            }
        }
    }

    /// Non-mutating variant of [`RegionMpu::check`].
    pub fn would_allow(&self, addr: Addr, kind: AccessKind) -> bool {
        if !self.enabled || !self.covers(addr) {
            return true;
        }
        self.slot_of(addr)
            .map(|slot| self.slots[slot].perm.allows(kind.required_perm()))
            .unwrap_or(false)
    }

    /// True when `addr` addresses one of the region MPU's memory-mapped
    /// registers.
    pub fn owns_register(addr: Addr) -> bool {
        (RMPU_BASE..RMPU_END).contains(&addr)
    }

    /// Reads a memory-mapped region-MPU register.
    pub fn read_register(&self, addr: Addr) -> u16 {
        let slot = self.slots.get(self.selected).copied().unwrap_or_default();
        match addr & !1 {
            RMPU_CTL => self.enabled as u16,
            RMPU_RNR => self.selected as u16,
            RMPU_RBAR => (slot.range.start >> 4) as u16,
            RMPU_RLAR => {
                ((slot.range.end >> 4) as u16 & 0x0FFF)
                    | (slot.perm.to_bits() << 12)
                    | ((slot.enabled as u16) << 15)
            }
            _ => 0,
        }
    }

    /// Writes a memory-mapped region-MPU register.  Region MPUs have no
    /// password/lock protocol, so writes always succeed.
    pub fn write_register(&mut self, addr: Addr, value: u16) {
        self.config_writes += 1;
        match addr & !1 {
            RMPU_CTL => self.enabled = value & 1 != 0,
            RMPU_RNR => self.selected = (value as usize) % self.slots.len().max(1),
            RMPU_RBAR => {
                if let Some(slot) = self.slots.get_mut(self.selected) {
                    let base = (value as Addr) << 4;
                    slot.range = AddrRange::new(base, base.max(slot.range.end));
                }
            }
            RMPU_RLAR => {
                if let Some(slot) = self.slots.get_mut(self.selected) {
                    let limit = ((value & 0x0FFF) as Addr) << 4;
                    slot.range = AddrRange::new(slot.range.start.min(limit), limit);
                    slot.perm = Perm::from_bits((value >> 12) & 0x7);
                    slot.enabled = value & 0x8000 != 0;
                }
            }
            _ => {}
        }
    }

    /// Applies a full region configuration in the order a context-switch
    /// routine writes it: every listed region (select, base, limit), then
    /// enable; slots beyond the listed ones are disabled.
    pub fn apply_config(&mut self, config: &amulet_core::mpu_plan::RegionRegisterValues) {
        for (i, region) in config.regions.iter().enumerate().take(self.slots.len()) {
            self.write_register(RMPU_RNR, i as u16);
            self.write_register(RMPU_RBAR, (region.range.start >> 4) as u16);
            self.write_register(
                RMPU_RLAR,
                ((region.range.end >> 4) as u16 & 0x0FFF) | (region.perm.to_bits() << 12) | 0x8000,
            );
        }
        for slot in self.slots.iter_mut().skip(config.regions.len()) {
            slot.enabled = false;
        }
        self.write_register(RMPU_CTL, 1);
    }
}

/// Base address of the PMP register block (present on NAPOT platforms such
/// as the `riscv-pmp` profile; memory-mapped stand-ins for the CSRs).
pub const PMP_BASE: Addr = 0x05C0;
/// `PMPMODE`: bit 0 selects user mode (PMP enforced).  Machine mode —
/// bit 0 clear — bypasses the PMP entirely, which is how the OS runs.
pub const PMP_MODE: Addr = 0x05C0;
/// `PMPCFG0`: packed entry configs for entries 0..4, 4 bits each
/// (bit 0 read, bit 1 write, bit 2 execute, bit 3 NAPOT-enable).
pub const PMP_CFG0: Addr = 0x05C2;
/// `PMPCFG1`: packed entry configs for entries 4..8.
pub const PMP_CFG1: Addr = 0x05C4;
/// `PMPADDR0`: first NAPOT address register; entry *i* lives at
/// `PMP_ADDR_BASE + 2 i`.  Encoding follows the RISC-V NAPOT rule scaled
/// to the 16-bit space: `pmpaddr = (base >> 2) | ((size >> 3) − 1)` — the
/// count of trailing one bits selects the power-of-two region size
/// (minimum 8 bytes), and the bits above them hold the size-aligned base.
pub const PMP_ADDR_BASE: Addr = 0x05C6;
/// One past the last PMP register address (8 entries).
pub const PMP_END: Addr = PMP_ADDR_BASE + 2 * PMP_MAX_ENTRIES as Addr;
/// Entry registers provided by the modelled PMP.
pub const PMP_MAX_ENTRIES: usize = 8;

/// One decoded PMP entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PmpEntry {
    /// The raw `pmpaddr` register value.
    pub addr_bits: u16,
    /// Entry permissions (from the packed config nibble).
    pub perm: Perm,
    /// Whether the entry participates in matching (`A` = NAPOT).
    pub enabled: bool,
}

impl PmpEntry {
    /// Decodes the NAPOT address register into the region it grants —
    /// TOR-free: the trailing-ones count alone fixes the power-of-two
    /// size, and masking them off yields the size-aligned base.
    pub fn range(&self) -> AddrRange {
        let ones = self.addr_bits.trailing_ones().min(13);
        let size = 8u32 << ones;
        let base = ((self.addr_bits as Addr) & !((1 << ones) - 1)) << 2;
        let start = base.min(amulet_core::addr::ADDRESS_SPACE_END);
        let end = base
            .saturating_add(size)
            .min(amulet_core::addr::ADDRESS_SPACE_END);
        AddrRange::new(start, end)
    }

    /// Encodes a NAPOT-valid range (power-of-two length, length-aligned
    /// base) into the register value.
    pub fn encode(range: AddrRange) -> u16 {
        debug_assert!(range.len().is_power_of_two() && range.len() >= 8);
        debug_assert!(range.start.is_multiple_of(range.len()));
        ((range.start >> 2) | ((range.len() >> 3) - 1)) as u16
    }
}

/// A RISC-V-PMP-style backend: NAPOT entries whose power-of-two regions
/// police **user-mode** accesses over every mapped range of the platform
/// — flash, InfoMem, SRAM, peripheral space, the boot ROM and the vector
/// table — while machine mode (the OS) bypasses the PMP entirely.
/// Deny-by-default: a user-mode access no enabled entry grants is a
/// violation.  The register block itself is privileged (CSR-style):
/// application stores through the bus fault, and only the OS's trusted
/// switch path programs it.
#[derive(Clone, Debug)]
pub struct PmpMpu {
    /// Whether user-mode enforcement is active (`PMPMODE` bit 0).  While
    /// false the CPU is in machine mode and the PMP checks nothing.
    pub user_mode: bool,
    /// The PMP entries.
    pub entries: Vec<PmpEntry>,
    /// The mapped platform ranges user-mode execution is policed over.
    jurisdiction: Vec<AddrRange>,
    /// Count of configuration writes (context-switch accounting; also the
    /// bus's attribute-cache epoch contribution).
    pub config_writes: u64,
    /// Count of access checks performed **by this backend** — with the
    /// bus's attribute cache enabled this counts oracle consultations
    /// only; see [`Mpu::checks`] for the full caveat.
    pub checks: u64,
    /// Count of violations detected (exact regardless of the attribute
    /// cache: denied accesses always reach the backend).
    pub violations: u64,
}

impl PmpMpu {
    /// Creates a machine-mode (non-enforcing) PMP with `entries` empty
    /// entries policing the given mapped platform ranges (real PMPs
    /// constrain user mode over the entire address space; restricting the
    /// model to the mapped ranges lets unmapped holes keep their
    /// higher-priority bus-fault semantics).
    pub fn new(entries: usize, jurisdiction: Vec<AddrRange>) -> Self {
        assert!(
            entries <= PMP_MAX_ENTRIES,
            "the modelled PMP register file has {PMP_MAX_ENTRIES} entries, \
             a {entries}-entry constraint cannot be honoured"
        );
        PmpMpu {
            user_mode: false,
            entries: vec![PmpEntry::default(); entries],
            jurisdiction,
            config_writes: 0,
            checks: 0,
            violations: 0,
        }
    }

    /// The address ranges this backend polices in user mode.
    pub fn jurisdiction(&self) -> impl Iterator<Item = AddrRange> + '_ {
        self.jurisdiction.iter().copied()
    }

    /// Whether `addr` falls inside the PMP's user-mode jurisdiction.
    pub fn covers(&self, addr: Addr) -> bool {
        self.jurisdiction.iter().any(|r| r.contains(addr))
    }

    /// The first enabled entry covering `addr`, if any (PMP entries match
    /// in priority order, lowest index first).
    pub fn entry_of(&self, addr: Addr) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.enabled && e.range().contains(addr))
    }

    /// Checks an access of `kind` at `addr`.
    pub fn check(&mut self, addr: Addr, kind: AccessKind) -> MpuDecision {
        self.checks += 1;
        if !self.user_mode || !self.covers(addr) {
            return MpuDecision::NotCovered;
        }
        match self.entry_of(addr) {
            Some(i) if self.entries[i].perm.allows(kind.required_perm()) => {
                MpuDecision::AllowedRegion(i)
            }
            matched => {
                self.violations += 1;
                MpuDecision::ViolationRegion(matched)
            }
        }
    }

    /// Non-mutating variant of [`PmpMpu::check`].
    pub fn would_allow(&self, addr: Addr, kind: AccessKind) -> bool {
        if !self.user_mode || !self.covers(addr) {
            return true;
        }
        self.entry_of(addr)
            .map(|i| self.entries[i].perm.allows(kind.required_perm()))
            .unwrap_or(false)
    }

    /// True when `addr` addresses one of the PMP's memory-mapped registers.
    pub fn owns_register(addr: Addr) -> bool {
        (PMP_BASE..PMP_END).contains(&addr)
    }

    /// Reads a memory-mapped PMP register.
    pub fn read_register(&self, addr: Addr) -> u16 {
        let cfg_nibble = |e: &PmpEntry| e.perm.to_bits() | ((e.enabled as u16) << 3);
        let packed = |lo: usize| -> u16 {
            self.entries
                .iter()
                .skip(lo)
                .take(4)
                .enumerate()
                .map(|(i, e)| cfg_nibble(e) << (4 * i))
                .sum()
        };
        match addr & !1 {
            PMP_MODE => self.user_mode as u16,
            PMP_CFG0 => packed(0),
            PMP_CFG1 => packed(4),
            a if (PMP_ADDR_BASE..PMP_END).contains(&a) => {
                let i = ((a - PMP_ADDR_BASE) / 2) as usize;
                self.entries.get(i).map(|e| e.addr_bits).unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Writes a memory-mapped PMP register (the privileged OS path; the
    /// bus rejects application stores before they reach here).
    pub fn write_register(&mut self, addr: Addr, value: u16) {
        self.config_writes += 1;
        let unpack = |entries: &mut [PmpEntry], lo: usize, value: u16| {
            for (i, e) in entries.iter_mut().skip(lo).take(4).enumerate() {
                let nibble = (value >> (4 * i)) & 0xF;
                e.perm = Perm::from_bits(nibble & 0x7);
                e.enabled = nibble & 0x8 != 0;
            }
        };
        match addr & !1 {
            PMP_MODE => self.user_mode = value & 1 != 0,
            PMP_CFG0 => unpack(&mut self.entries, 0, value),
            PMP_CFG1 => unpack(&mut self.entries, 4, value),
            a if (PMP_ADDR_BASE..PMP_END).contains(&a) => {
                let i = ((a - PMP_ADDR_BASE) / 2) as usize;
                if let Some(e) = self.entries.get_mut(i) {
                    e.addr_bits = value;
                }
            }
            _ => {}
        }
    }

    /// Applies a full PMP configuration in the order the OS switch code
    /// writes it: every entry's `pmpaddr`, **both** packed `pmpcfg` words
    /// (a real RV32 driver rewrites the whole `pmpcfg` CSR set, which also
    /// guarantees entries a previous, wider configuration enabled are
    /// disabled), then the privilege-mode toggle — or, for the
    /// machine-mode (OS) configuration, the mode toggle alone (entries
    /// are left in place; machine mode ignores them, exactly like
    /// hardware).  The write sequence is deterministic, so it always
    /// matches [`PmpRegisterValues::write_count`] and the
    /// constraint-derived cost model.
    ///
    /// [`PmpRegisterValues::write_count`]: amulet_core::mpu_plan::PmpRegisterValues::write_count
    pub fn apply_config(&mut self, config: &amulet_core::mpu_plan::PmpRegisterValues) {
        if !config.user_mode {
            self.write_register(PMP_MODE, 0);
            return;
        }
        let count = config.entries.len().min(self.entries.len());
        for (i, region) in config.entries.iter().enumerate().take(count) {
            self.write_register(
                PMP_ADDR_BASE + 2 * i as Addr,
                PmpEntry::encode(region.range),
            );
        }
        for (word, base) in [(PMP_CFG0, 0usize), (PMP_CFG1, 4)] {
            let mut packed = 0u16;
            for (i, region) in config.entries.iter().enumerate().take(count) {
                if i >= base && i < base + 4 {
                    packed |= (region.perm.to_bits() | 0x8) << (4 * (i - base));
                }
            }
            self.write_register(word, packed);
        }
        self.write_register(PMP_MODE, 1);
    }
}

/// An "advanced MPU" for the §5 ablation: an arbitrary list of segments with
/// full coverage of the address space, standing in for the more capable MPUs
/// the paper says would remove the need for compiler-inserted checks.
#[derive(Clone, Debug, Default)]
pub struct ExtendedMpu {
    /// Whether the extended MPU is active (when active it takes precedence
    /// over the standard 3-segment MPU).
    pub enabled: bool,
    /// Segments: address range plus permissions.  Addresses not covered by
    /// any segment are *denied* (full coverage, unlike the FR5969 part).
    pub segments: Vec<(AddrRange, Perm)>,
    /// Violations detected.
    pub violations: u64,
}

impl ExtendedMpu {
    /// Installs a plan's segments.
    pub fn apply_plan(&mut self, plan: &MpuPlan) {
        self.segments = plan.segments.iter().map(|s| (s.range, s.perm)).collect();
        self.enabled = true;
    }

    /// Checks an access, returning `true` when permitted.
    pub fn check(&mut self, addr: Addr, kind: AccessKind) -> bool {
        if !self.enabled {
            return true;
        }
        let allowed = self
            .segments
            .iter()
            .find(|(r, _)| r.contains(addr))
            .map(|(_, p)| p.allows(kind.required_perm()))
            .unwrap_or(false);
        if !allowed {
            self.violations += 1;
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};

    fn fr5969() -> Mpu {
        Mpu::msp430fr5969()
    }

    #[test]
    fn disabled_mpu_allows_everything() {
        let mut mpu = fr5969();
        assert_eq!(
            mpu.check(0x5000, AccessKind::Write),
            MpuDecision::NotCovered
        );
        assert!(mpu.would_allow(0xF000, AccessKind::Execute));
    }

    #[test]
    fn segment_classification_follows_boundaries() {
        let mut mpu = fr5969();
        mpu.boundary1 = 0x6000;
        mpu.boundary2 = 0x8000;
        mpu.enabled = true;
        assert_eq!(mpu.segment_of(0x4400), Some(MpuSegment::Seg1));
        assert_eq!(mpu.segment_of(0x5FFF), Some(MpuSegment::Seg1));
        assert_eq!(mpu.segment_of(0x6000), Some(MpuSegment::Seg2));
        assert_eq!(mpu.segment_of(0x7FFF), Some(MpuSegment::Seg2));
        assert_eq!(mpu.segment_of(0x8000), Some(MpuSegment::Seg3));
        assert_eq!(mpu.segment_of(0x1800), Some(MpuSegment::Info));
        assert_eq!(mpu.segment_of(0x1C00), None, "SRAM is not covered");
        assert_eq!(mpu.segment_of(0x0200), None, "peripherals are not covered");
    }

    #[test]
    fn violations_are_latched_and_counted() {
        let mut mpu = fr5969();
        mpu.boundary1 = 0x6000;
        mpu.boundary2 = 0x8000;
        mpu.seg1 = Perm::X;
        mpu.seg2 = Perm::RW;
        mpu.seg3 = Perm::NONE;
        mpu.enabled = true;

        assert!(mpu.check(0x7000, AccessKind::Write).permits());
        assert!(!mpu.check(0x9000, AccessKind::Read).permits());
        assert!(!mpu.check(0x5000, AccessKind::Write).permits());
        assert_eq!(mpu.violations, 2);
        assert_ne!(mpu.violation_flags & (1 << 2), 0, "seg3 flag latched");
        assert_ne!(mpu.violation_flags & (1 << 0), 0, "seg1 flag latched");

        // Clearing via MPUCTL1 write.
        mpu.write_register(MPUCTL1, 0).unwrap();
        assert_eq!(mpu.violation_flags, 0);
    }

    #[test]
    fn register_password_and_lock_protocol() {
        let mut mpu = fr5969();
        // Enable without password: rejected.
        assert_eq!(
            mpu.write_register(MPUCTL0, 0x0001),
            Err(MpuRegisterError::BadPassword)
        );
        assert!(!mpu.enabled);
        // Proper password enables.
        mpu.write_register(MPUCTL0, 0xA501).unwrap();
        assert!(mpu.enabled);
        // Lock, then further writes fail.
        mpu.write_register(MPUCTL0, 0xA503).unwrap();
        assert!(mpu.locked);
        assert_eq!(
            mpu.write_register(MPUSEGB1, 0x600),
            Err(MpuRegisterError::Locked)
        );
        // Reset unlocks.
        mpu.reset();
        assert!(!mpu.locked && !mpu.enabled);
    }

    #[test]
    fn register_readback_roundtrips() {
        let mut mpu = fr5969();
        mpu.write_register(MPUSEGB1, 0x600).unwrap();
        mpu.write_register(MPUSEGB2, 0x800).unwrap();
        mpu.write_register(MPUSAM, 0x0124).unwrap();
        assert_eq!(mpu.read_register(MPUSEGB1), 0x600);
        assert_eq!(mpu.read_register(MPUSEGB2), 0x800);
        assert_eq!(mpu.boundary1, 0x6000);
        assert_eq!(mpu.boundary2, 0x8000);
        assert_eq!(mpu.seg1, Perm::from_bits(0x4));
        assert_eq!(mpu.seg2, Perm::from_bits(0x2));
        assert_eq!(mpu.seg3, Perm::from_bits(0x1));
        assert_eq!(mpu.read_register(MPUSAM), 0x0124);
        assert_eq!(mpu.read_register(MPUCTL0) & 0xFF00, 0x9600);
    }

    #[test]
    fn plan_register_values_enforce_figure1_permissions() {
        let map = MemoryMapPlanner::msp430fr5969()
            .plan(
                &OsImageSpec::default(),
                &[
                    AppImageSpec::new("A", 0x800, 0x200, 0x100),
                    AppImageSpec::new("B", 0x800, 0x200, 0x100),
                ],
            )
            .unwrap();
        let plan = MpuPlan::for_app(&map, 0).unwrap();
        let mut mpu = fr5969();
        mpu.apply_registers(plan.register_values()).unwrap();
        assert!(mpu.enabled);

        let app_a = &map.apps[0];
        let app_b = &map.apps[1];
        // App A may write its own data...
        assert!(mpu.check(app_a.data.start, AccessKind::Write).permits());
        // ...may execute its own code...
        assert!(mpu.check(app_a.code.start, AccessKind::Execute).permits());
        // ...may not touch app B at all...
        assert!(!mpu.check(app_b.data.start, AccessKind::Read).permits());
        assert!(!mpu.check(app_b.code.start, AccessKind::Execute).permits());
        // ...and may not write OS data (execute-only segment 1), though the
        // MPU alone cannot stop reads of SRAM or peripherals.
        assert!(!mpu.check(map.os_data.start, AccessKind::Write).permits());
        assert_eq!(
            mpu.check(map.os_stack.start, AccessKind::Write),
            MpuDecision::NotCovered
        );
    }

    #[test]
    fn extended_mpu_denies_uncovered_addresses() {
        let mut ext = ExtendedMpu::default();
        assert!(
            ext.check(0x5000, AccessKind::Write),
            "disabled extended MPU is permissive"
        );
        ext.enabled = true;
        ext.segments = vec![(AddrRange::new(0x5000, 0x6000), Perm::RW)];
        assert!(ext.check(0x5800, AccessKind::Write));
        assert!(
            !ext.check(0x4800, AccessKind::Read),
            "full coverage denies unlisted addresses"
        );
        assert_eq!(ext.violations, 1);
    }

    fn fr5994_region() -> RegionMpu {
        let spec = amulet_core::layout::PlatformSpec::msp430fr5994();
        RegionMpu::new(8, spec.fram, spec.info_mem, spec.sram)
    }

    #[test]
    fn disabled_region_mpu_is_permissive() {
        let mut r = fr5994_region();
        assert_eq!(r.check(0x5000, AccessKind::Write), MpuDecision::NotCovered);
        assert!(r.would_allow(0x5000, AccessKind::Write));
    }

    #[test]
    fn region_mpu_denies_by_default_inside_its_jurisdiction() {
        let mut r = fr5994_region();
        r.apply_config(&amulet_core::mpu_plan::RegionRegisterValues {
            regions: vec![
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5000, 0x5400),
                    perm: Perm::X,
                },
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5400, 0x5800),
                    perm: Perm::RW,
                },
            ],
        });
        assert!(r.enabled);
        // Granted accesses pass…
        assert_eq!(
            r.check(0x5000, AccessKind::Execute),
            MpuDecision::AllowedRegion(0)
        );
        assert_eq!(
            r.check(0x5600, AccessKind::Write),
            MpuDecision::AllowedRegion(1)
        );
        // …a matching region without the permission is a violation…
        assert_eq!(
            r.check(0x5100, AccessKind::Write),
            MpuDecision::ViolationRegion(Some(0))
        );
        // …and uncovered FRAM *and SRAM* are denied (full coverage).
        assert_eq!(
            r.check(0x9000, AccessKind::Read),
            MpuDecision::ViolationRegion(None)
        );
        assert_eq!(
            r.check(0x1C00, AccessKind::Write),
            MpuDecision::ViolationRegion(None)
        );
        // Peripheral space stays outside the jurisdiction.
        assert_eq!(r.check(0x0200, AccessKind::Write), MpuDecision::NotCovered);
        assert_eq!(r.violations, 3);
    }

    #[test]
    fn region_registers_roundtrip_and_reconfigure() {
        let mut r = fr5994_region();
        r.write_register(RMPU_RNR, 2);
        r.write_register(RMPU_RBAR, 0x500);
        r.write_register(RMPU_RLAR, 0x540 | (Perm::RW.to_bits() << 12) | 0x8000);
        assert_eq!(r.read_register(RMPU_RNR), 2);
        assert_eq!(r.read_register(RMPU_RBAR), 0x500);
        assert_eq!(r.slots[2].range, AddrRange::new(0x5000, 0x5400));
        assert_eq!(r.slots[2].perm, Perm::RW);
        assert!(r.slots[2].enabled);
        // Reprogramming the same slot with a lower base works.
        r.write_register(RMPU_RBAR, 0x480);
        r.write_register(RMPU_RLAR, 0x500 | (Perm::X.to_bits() << 12) | 0x8000);
        assert_eq!(r.slots[2].range, AddrRange::new(0x4800, 0x5000));
        assert_eq!(r.slots[2].perm, Perm::X);
        // Config writes were counted.
        assert!(r.config_writes >= 5);
    }

    #[test]
    fn region_plan_for_app_encodes_and_enforces() {
        let map = MemoryMapPlanner::new(amulet_core::layout::PlatformSpec::msp430fr5994())
            .unwrap()
            .plan(
                &OsImageSpec::default(),
                &[
                    AppImageSpec::new("A", 0x800, 0x200, 0x100),
                    AppImageSpec::new("B", 0x800, 0x200, 0x100),
                ],
            )
            .unwrap();
        let plan = MpuPlan::for_app_on(&map, 0).unwrap();
        let mut r = fr5994_region();
        r.apply_config(&plan.region_register_values());

        let (a, b) = (&map.apps[0], &map.apps[1]);
        assert!(r.check(a.code.start, AccessKind::Execute).permits());
        assert!(r.check(a.data.start, AccessKind::Write).permits());
        // App B fully blocked, OS data blocked, OS stack in SRAM blocked —
        // all in hardware, with no compiler-inserted check needed.
        assert!(!r.check(b.data.start, AccessKind::Read).permits());
        assert!(!r.check(map.os_data.start, AccessKind::Write).permits());
        assert!(!r.check(map.os_stack.start, AccessKind::Write).permits());
    }

    #[test]
    fn region_mpu_with_peripheral_jurisdiction_polices_peripheral_space() {
        let spec = amulet_core::layout::PlatformSpec::cortex_m33();
        let mut r = RegionMpu::new(16, spec.fram, spec.info_mem, spec.sram)
            .with_extended_jurisdiction(&spec.full_jurisdiction_ranges()[3..]);
        assert!(r.covers_full_platform());
        assert_eq!(r.jurisdiction().count(), 6);
        r.apply_config(&amulet_core::mpu_plan::RegionRegisterValues {
            regions: vec![amulet_core::mpu_plan::RegionDesc {
                range: AddrRange::new(0x5000, 0x5400),
                perm: Perm::RW,
            }],
        });
        // Inside jurisdiction, no region grants it: a peripheral write is
        // a violation — the DESIGN §6 gap closed for this profile.
        assert_eq!(
            r.check(0x0200, AccessKind::Write),
            MpuDecision::ViolationRegion(None)
        );
        // A region over peripheral space grants access (the OS plan).
        r.apply_config(&amulet_core::mpu_plan::RegionRegisterValues {
            regions: vec![amulet_core::mpu_plan::RegionDesc {
                range: spec.peripherals,
                perm: Perm::RW,
            }],
        });
        assert!(r.check(0x0200, AccessKind::Write).permits());
    }

    fn riscv_pmp() -> PmpMpu {
        let spec = amulet_core::layout::PlatformSpec::riscv_pmp();
        PmpMpu::new(8, spec.full_jurisdiction_ranges().to_vec())
    }

    #[test]
    fn pmp_napot_encoding_roundtrips() {
        for (base, size) in [
            (0x5000u32, 0x400u32),
            (0x4400, 0x8),
            (0x8000, 0x8000),
            (0, 8),
        ] {
            let range = AddrRange::from_len(base, size);
            let entry = PmpEntry {
                addr_bits: PmpEntry::encode(range),
                perm: Perm::RW,
                enabled: true,
            };
            assert_eq!(entry.range(), range, "{range:?}");
        }
    }

    #[test]
    fn pmp_machine_mode_bypasses_and_user_mode_denies_by_default() {
        let mut p = riscv_pmp();
        // Machine mode (power-on): nothing is policed.
        assert_eq!(p.check(0x5000, AccessKind::Write), MpuDecision::NotCovered);
        p.apply_config(&amulet_core::mpu_plan::PmpRegisterValues {
            entries: vec![
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5000, 0x5400),
                    perm: Perm::X,
                },
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5400, 0x5800),
                    perm: Perm::RW,
                },
            ],
            user_mode: true,
        });
        assert!(p.user_mode);
        // Granted accesses pass…
        assert_eq!(
            p.check(0x5000, AccessKind::Execute),
            MpuDecision::AllowedRegion(0)
        );
        assert_eq!(
            p.check(0x5600, AccessKind::Write),
            MpuDecision::AllowedRegion(1)
        );
        // …a matching entry without the permission is a violation…
        assert_eq!(
            p.check(0x5100, AccessKind::Write),
            MpuDecision::ViolationRegion(Some(0))
        );
        // …and the full jurisdiction — FRAM, SRAM *and peripherals* — is
        // denied by default in user mode.
        assert_eq!(
            p.check(0x9000, AccessKind::Read),
            MpuDecision::ViolationRegion(None)
        );
        assert_eq!(
            p.check(0x1C00, AccessKind::Write),
            MpuDecision::ViolationRegion(None)
        );
        assert_eq!(
            p.check(0x0200, AccessKind::Write),
            MpuDecision::ViolationRegion(None)
        );
        // The boot ROM and the vector table are policed too: nowhere in
        // the mapped platform space escapes user-mode jurisdiction.
        assert_eq!(
            p.check(0x1000, AccessKind::Execute),
            MpuDecision::ViolationRegion(None)
        );
        assert_eq!(
            p.check(0xFF80, AccessKind::Write),
            MpuDecision::ViolationRegion(None)
        );
        assert_eq!(p.violations, 6);

        // Back to machine mode: one register write, everything permitted.
        let writes = p.config_writes;
        p.apply_config(&amulet_core::mpu_plan::PmpRegisterValues {
            entries: vec![],
            user_mode: false,
        });
        assert_eq!(p.config_writes - writes, 1);
        assert!(!p.user_mode);
        assert_eq!(p.check(0x0200, AccessKind::Write), MpuDecision::NotCovered);
        // The entries are still programmed (machine mode just ignores
        // them), exactly like hardware.
        assert!(p.entries[0].enabled);
    }

    #[test]
    fn pmp_registers_roundtrip_and_count_writes() {
        let mut p = riscv_pmp();
        let range = AddrRange::new(0x5000, 0x5400);
        p.write_register(PMP_ADDR_BASE + 4, PmpEntry::encode(range));
        p.write_register(PMP_CFG0, (Perm::RW.to_bits() | 0x8) << 8);
        p.write_register(PMP_MODE, 1);
        assert_eq!(p.read_register(PMP_ADDR_BASE + 4), PmpEntry::encode(range));
        assert_eq!(p.read_register(PMP_CFG0) >> 8, Perm::RW.to_bits() | 0x8);
        assert_eq!(p.read_register(PMP_MODE), 1);
        assert_eq!(p.entries[2].range(), range);
        assert_eq!(p.entries[2].perm, Perm::RW);
        assert!(p.entries[2].enabled);
        assert_eq!(p.config_writes, 3);
    }

    #[test]
    fn pmp_app_config_write_count_matches_the_cost_model() {
        // 2 pmpaddr + 1 packed pmpcfg + 1 mode toggle = 4, the figure the
        // constraint-derived cost model charges for an app install.
        let mut p = riscv_pmp();
        let cfg = amulet_core::mpu_plan::PmpRegisterValues {
            entries: vec![
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5000, 0x5400),
                    perm: Perm::X,
                },
                amulet_core::mpu_plan::RegionDesc {
                    range: AddrRange::new(0x5400, 0x5800),
                    perm: Perm::RW,
                },
            ],
            user_mode: true,
        };
        p.apply_config(&cfg);
        assert_eq!(p.config_writes, u64::from(cfg.write_count()));
        assert_eq!(
            cfg.write_count(),
            amulet_core::platform::MpuModel::riscv_pmp_napot(8, 0x40).config_writes_for_app()
        );
    }

    #[test]
    fn apply_plan_unchecked_counts_register_writes() {
        let map = MemoryMapPlanner::msp430fr5969()
            .plan(
                &OsImageSpec::default(),
                &[AppImageSpec::new("A", 0x800, 0x200, 0x100)],
            )
            .unwrap();
        let plan = MpuPlan::for_app(&map, 0).unwrap();
        let mut mpu = fr5969();
        let before = mpu.config_writes;
        mpu.apply_plan_unchecked(&plan);
        assert_eq!(
            mpu.config_writes - before,
            MpuRegisterValues::WRITE_COUNT as u64
        );
        assert!(mpu.enabled);
    }
}
