//! Binary serialization for firmware images — the mechanism half of the
//! format whose policy half (plan types) lives in `amulet_core::serial`.
//!
//! The on-disk unit is an **envelope**:
//!
//! ```text
//! magic  b"AMFW"                       4 bytes
//! version u16 (little-endian)          currently 1
//! hash    u64 (little-endian)          FNV-1a64 of everything below
//! key     length-prefixed UTF-8        the configuration key
//! len     u32                          payload byte count
//! payload [Firmware]                   the image body
//! ```
//!
//! The content hash covers the key, the payload length *and* the payload,
//! so any single-bit flip anywhere after the hash field changes the
//! recomputed hash (each FNV-1a round is `h = (h ^ b) * p` with an odd
//! prime `p`, injective modulo 2⁶⁴) and flips in the magic, version or
//! hash field itself fail their own checks — the corruption battery
//! asserts `Err(_)` for *every* single-bit flip and every strict prefix
//! truncation of an encoded image.
//!
//! Decoding is total: out-of-range instruction addresses, misaligned
//! code, unknown opcodes and oversized counts are all refused with typed
//! [`DecodeError`]s *before* reaching any constructor that asserts (such
//! as [`InstrStore::insert`]).

use crate::code::InstrStore;
use crate::firmware::{AppBinary, DataSegment, Firmware, OsBinary};
use crate::isa::{AluOp, Cond, Instr, Reg, UnaryOp, Width};
use amulet_core::addr::Addr;
use amulet_core::layout::{AppPlacement, MemoryMap};
use amulet_core::method::IsolationMethod;
use amulet_core::mpu_plan::MpuConfig;
use amulet_core::serial::{decode_seq, encode_seq, fnv1a64, Codec, DecodeError, Reader, Writer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Envelope magic bytes: "AMFW" (amulet firmware).
pub const MAGIC: [u8; 4] = *b"AMFW";

/// On-disk format version this build reads and writes.  Bump on any
/// change to the encoding of [`Firmware`] or the plan types — the
/// golden-bytes snapshot test fails when the format drifts without one.
pub const FORMAT_VERSION: u16 = 1;

impl Codec for Reg {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Reg(r.u8("register")?))
    }
}

impl Codec for Width {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Width::Byte => 0,
            Width::Word => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("access width")? {
            0 => Ok(Width::Byte),
            1 => Ok(Width::Word),
            tag => Err(DecodeError::BadTag {
                what: "access width",
                tag,
            }),
        }
    }
}

impl Codec for Cond {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lo => 2,
            Cond::Hs => 3,
            Cond::Lt => 4,
            Cond::Ge => 5,
            Cond::Mi => 6,
            Cond::Pl => 7,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("condition")? {
            0 => Ok(Cond::Eq),
            1 => Ok(Cond::Ne),
            2 => Ok(Cond::Lo),
            3 => Ok(Cond::Hs),
            4 => Ok(Cond::Lt),
            5 => Ok(Cond::Ge),
            6 => Ok(Cond::Mi),
            7 => Ok(Cond::Pl),
            tag => Err(DecodeError::BadTag {
                what: "condition",
                tag,
            }),
        }
    }
}

impl Codec for AluOp {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::And => 2,
            AluOp::Or => 3,
            AluOp::Xor => 4,
            AluOp::Mul => 5,
            AluOp::Div => 6,
            AluOp::Rem => 7,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("ALU op")? {
            0 => Ok(AluOp::Add),
            1 => Ok(AluOp::Sub),
            2 => Ok(AluOp::And),
            3 => Ok(AluOp::Or),
            4 => Ok(AluOp::Xor),
            5 => Ok(AluOp::Mul),
            6 => Ok(AluOp::Div),
            7 => Ok(AluOp::Rem),
            tag => Err(DecodeError::BadTag {
                what: "ALU op",
                tag,
            }),
        }
    }
}

impl Codec for UnaryOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            UnaryOp::Neg => w.u8(0),
            UnaryOp::Not => w.u8(1),
            UnaryOp::Shl(n) => {
                w.u8(2);
                w.u8(*n);
            }
            UnaryOp::Shr(n) => {
                w.u8(3);
                w.u8(*n);
            }
            UnaryOp::Sar(n) => {
                w.u8(4);
                w.u8(*n);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("unary op")? {
            0 => Ok(UnaryOp::Neg),
            1 => Ok(UnaryOp::Not),
            2 => Ok(UnaryOp::Shl(r.u8("shift amount")?)),
            3 => Ok(UnaryOp::Shr(r.u8("shift amount")?)),
            4 => Ok(UnaryOp::Sar(r.u8("shift amount")?)),
            tag => Err(DecodeError::BadTag {
                what: "unary op",
                tag,
            }),
        }
    }
}

impl Codec for Instr {
    fn encode(&self, w: &mut Writer) {
        match self {
            Instr::MovImm { dst, imm } => {
                w.u8(0);
                dst.encode(w);
                w.u16(*imm);
            }
            Instr::Mov { dst, src } => {
                w.u8(1);
                dst.encode(w);
                src.encode(w);
            }
            Instr::Load {
                dst,
                base,
                offset,
                width,
            } => {
                w.u8(2);
                dst.encode(w);
                base.encode(w);
                w.i16(*offset);
                width.encode(w);
            }
            Instr::Store {
                src,
                base,
                offset,
                width,
            } => {
                w.u8(3);
                src.encode(w);
                base.encode(w);
                w.i16(*offset);
                width.encode(w);
            }
            Instr::LoadAbs { dst, addr, width } => {
                w.u8(4);
                dst.encode(w);
                w.u16(*addr);
                width.encode(w);
            }
            Instr::StoreAbs { src, addr, width } => {
                w.u8(5);
                src.encode(w);
                w.u16(*addr);
                width.encode(w);
            }
            Instr::Push { src } => {
                w.u8(6);
                src.encode(w);
            }
            Instr::Pop { dst } => {
                w.u8(7);
                dst.encode(w);
            }
            Instr::Alu { op, dst, src } => {
                w.u8(8);
                op.encode(w);
                dst.encode(w);
                src.encode(w);
            }
            Instr::AluImm { op, dst, imm } => {
                w.u8(9);
                op.encode(w);
                dst.encode(w);
                w.u16(*imm);
            }
            Instr::Unary { op, reg } => {
                w.u8(10);
                op.encode(w);
                reg.encode(w);
            }
            Instr::Cmp { a, b } => {
                w.u8(11);
                a.encode(w);
                b.encode(w);
            }
            Instr::CmpImm { a, imm } => {
                w.u8(12);
                a.encode(w);
                w.u16(*imm);
            }
            Instr::Jmp { target } => {
                w.u8(13);
                w.u16(*target);
            }
            Instr::Jcc { cond, target } => {
                w.u8(14);
                cond.encode(w);
                w.u16(*target);
            }
            Instr::Br { reg } => {
                w.u8(15);
                reg.encode(w);
            }
            Instr::Call { target } => {
                w.u8(16);
                w.u16(*target);
            }
            Instr::CallReg { reg } => {
                w.u8(17);
                reg.encode(w);
            }
            Instr::Ret => w.u8(18),
            Instr::Syscall { num } => {
                w.u8(19);
                w.u16(*num);
            }
            Instr::Fault { code } => {
                w.u8(20);
                w.u16(*code);
            }
            Instr::Halt => w.u8(21),
            Instr::Nop => w.u8(22),
            Instr::Elided { words, cycles } => {
                w.u8(23);
                w.u8(*words);
                w.u8(*cycles);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8("instruction opcode")? {
            0 => Instr::MovImm {
                dst: Reg::decode(r)?,
                imm: r.u16("immediate")?,
            },
            1 => Instr::Mov {
                dst: Reg::decode(r)?,
                src: Reg::decode(r)?,
            },
            2 => Instr::Load {
                dst: Reg::decode(r)?,
                base: Reg::decode(r)?,
                offset: r.i16("offset")?,
                width: Width::decode(r)?,
            },
            3 => Instr::Store {
                src: Reg::decode(r)?,
                base: Reg::decode(r)?,
                offset: r.i16("offset")?,
                width: Width::decode(r)?,
            },
            4 => Instr::LoadAbs {
                dst: Reg::decode(r)?,
                addr: r.u16("absolute address")?,
                width: Width::decode(r)?,
            },
            5 => Instr::StoreAbs {
                src: Reg::decode(r)?,
                addr: r.u16("absolute address")?,
                width: Width::decode(r)?,
            },
            6 => Instr::Push {
                src: Reg::decode(r)?,
            },
            7 => Instr::Pop {
                dst: Reg::decode(r)?,
            },
            8 => Instr::Alu {
                op: AluOp::decode(r)?,
                dst: Reg::decode(r)?,
                src: Reg::decode(r)?,
            },
            9 => Instr::AluImm {
                op: AluOp::decode(r)?,
                dst: Reg::decode(r)?,
                imm: r.u16("immediate")?,
            },
            10 => Instr::Unary {
                op: UnaryOp::decode(r)?,
                reg: Reg::decode(r)?,
            },
            11 => Instr::Cmp {
                a: Reg::decode(r)?,
                b: Reg::decode(r)?,
            },
            12 => Instr::CmpImm {
                a: Reg::decode(r)?,
                imm: r.u16("immediate")?,
            },
            13 => Instr::Jmp {
                target: r.u16("jump target")?,
            },
            14 => Instr::Jcc {
                cond: Cond::decode(r)?,
                target: r.u16("jump target")?,
            },
            15 => Instr::Br {
                reg: Reg::decode(r)?,
            },
            16 => Instr::Call {
                target: r.u16("call target")?,
            },
            17 => Instr::CallReg {
                reg: Reg::decode(r)?,
            },
            18 => Instr::Ret,
            19 => Instr::Syscall {
                num: r.u16("syscall number")?,
            },
            20 => Instr::Fault {
                code: r.u16("fault code")?,
            },
            21 => Instr::Halt,
            22 => Instr::Nop,
            23 => Instr::Elided {
                words: r.u8("elided words")?,
                cycles: r.u8("elided cycles")?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "instruction opcode",
                    tag,
                })
            }
        })
    }
}

impl Codec for InstrStore {
    /// Encodes the store as a count followed by `(address, instruction)`
    /// pairs in ascending address order — the store's canonical iteration
    /// order, so re-encoding a decoded store is byte-identical.
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for (addr, instr) in self.iter() {
            w.u16(addr as u16);
            instr.encode(w);
        }
    }

    /// Decodes and validates: addresses must be even (the
    /// [`InstrStore::insert`] alignment assertion, checked here first so
    /// corrupt input errors instead of panicking) and strictly
    /// increasing (canonical order, no duplicates).  A `u16` address is
    /// inside the 64 KiB space by construction.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.seq_len("instruction count", 3)?;
        if len > crate::code::SLOT_COUNT {
            return Err(DecodeError::BadLength {
                what: "instruction count",
                len: len as u64,
            });
        }
        let mut store = InstrStore::new();
        let mut prev: Option<u16> = None;
        for _ in 0..len {
            let addr = r.u16("instruction address")?;
            let instr = Instr::decode(r)?;
            if addr % 2 != 0 {
                return Err(DecodeError::BadValue {
                    what: "instruction address (misaligned)",
                });
            }
            if let Some(p) = prev {
                if addr <= p {
                    return Err(DecodeError::BadValue {
                        what: "instruction addresses (not strictly increasing)",
                    });
                }
            }
            prev = Some(addr);
            store.insert(Addr::from(addr), instr);
        }
        Ok(store)
    }
}

impl Codec for DataSegment {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.addr);
        w.bytes(&self.bytes);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DataSegment {
            addr: r.u32("data segment address")?,
            bytes: r.bytes("data segment bytes")?,
        })
    }
}

fn encode_symbol_table(table: &BTreeMap<String, Addr>, w: &mut Writer) {
    w.usize(table.len());
    for (name, addr) in table {
        (name.clone(), *addr).encode(w);
    }
}

fn decode_symbol_table(
    r: &mut Reader<'_>,
    what: &'static str,
) -> Result<BTreeMap<String, Addr>, DecodeError> {
    let pairs: Vec<(String, Addr)> = decode_seq(r, what, 8)?;
    Ok(pairs.into_iter().collect())
}

impl Codec for AppBinary {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.usize(self.index);
        self.placement.encode(w);
        encode_symbol_table(&self.handlers, w);
        self.mpu_config.encode(w);
        w.u32(self.initial_sp);
        self.max_stack_estimate.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AppBinary {
            name: r.str("app name")?,
            index: r.usize("app index")?,
            placement: AppPlacement::decode(r)?,
            handlers: decode_symbol_table(r, "handler table")?,
            mpu_config: MpuConfig::decode(r)?,
            initial_sp: r.u32("initial stack pointer")?,
            max_stack_estimate: Option::<u32>::decode(r)?,
        })
    }
}

impl Codec for OsBinary {
    fn encode(&self, w: &mut Writer) {
        self.mpu_config.encode(w);
        w.u32(self.initial_sp);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OsBinary {
            mpu_config: MpuConfig::decode(r)?,
            initial_sp: r.u32("initial stack pointer")?,
        })
    }
}

impl Codec for Firmware {
    fn encode(&self, w: &mut Writer) {
        self.method.encode(w);
        self.memory_map.encode(w);
        self.code.encode(w);
        encode_seq(&self.data, w);
        encode_symbol_table(&self.symbols, w);
        encode_seq(&self.apps, w);
        self.os.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Firmware {
            method: IsolationMethod::decode(r)?,
            memory_map: MemoryMap::decode(r)?,
            code: Arc::new(InstrStore::decode(r)?),
            data: decode_seq(r, "data segments", 8)?,
            symbols: decode_symbol_table(r, "symbol table")?,
            apps: decode_seq(r, "app binaries", 8)?,
            os: OsBinary::decode(r)?,
        })
    }
}

/// Encodes a firmware image into a v1 envelope under `key`.
pub fn encode_firmware(key: &str, firmware: &Firmware) -> Vec<u8> {
    let mut body = Writer::new();
    body.str(key);
    let payload = firmware.to_bytes();
    body.usize(payload.len());
    body.raw(&payload);
    let body = body.into_bytes();

    let mut w = Writer::new();
    w.raw(&MAGIC);
    w.u16(FORMAT_VERSION);
    w.u64(fnv1a64(&body));
    w.raw(&body);
    w.into_bytes()
}

/// Checks a v1 envelope (magic, version, content hash, key, payload
/// length) and returns the embedded key plus a reader positioned at the
/// firmware payload.  Shared by [`decode_firmware`] and
/// [`verify_envelope`].
fn open_envelope(bytes: &[u8]) -> Result<(String, Reader<'_>), DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16("format version")?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion { version });
    }
    let expected = r.u64("content hash")?;
    let body = r.take(r.remaining(), "envelope body")?;
    let actual = fnv1a64(body);
    if actual != expected {
        return Err(DecodeError::HashMismatch { expected, actual });
    }

    let mut r = Reader::new(body);
    let key = r.str("configuration key")?;
    let payload_len = r.usize("payload length")?;
    if payload_len != r.remaining() {
        return Err(DecodeError::BadLength {
            what: "payload length",
            len: payload_len as u64,
        });
    }
    Ok((key, r))
}

/// Decodes a v1 envelope, returning the embedded key and the image.
///
/// Total: truncation, bit flips (anywhere — the hash covers the body and
/// the header fields check themselves), unknown versions, oversized
/// lengths and trailing bytes all return `Err`.
pub fn decode_firmware(bytes: &[u8]) -> Result<(String, Firmware), DecodeError> {
    let (key, mut r) = open_envelope(bytes)?;
    let firmware = Firmware::decode(&mut r)?;
    r.finish()?;
    Ok((key, firmware))
}

/// Verifies a v1 envelope without materialising the image: magic, format
/// version, content hash (over the whole body, so any corruption of the
/// payload is caught), embedded key and payload length are all checked and
/// the key is returned.  This is what a warm start needs before it can
/// *skip* rebuilding a firmware — actually decoding the image can then
/// happen lazily at first use.  Same totality guarantees as
/// [`decode_firmware`].
pub fn verify_envelope(bytes: &[u8]) -> Result<String, DecodeError> {
    let (key, _payload) = open_envelope(bytes)?;
    Ok(key)
}
