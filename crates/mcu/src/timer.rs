//! The hardware timer used by the paper's measurements.
//!
//! §4.2 of the paper: "a hardware timer on the MSP430FR5969 MCU was used to
//! measure the time of each iteration (with a precision of 16 cycles)".  The
//! timer here is a free-running cycle counter whose memory-mapped read-out is
//! quantised to 16-cycle ticks, so benchmark code observes exactly the same
//! granularity.

use amulet_core::addr::Addr;

/// Memory-mapped address of the timer counter register (`TA0R`).
pub const TIMER_COUNTER: Addr = 0x0350;
/// Memory-mapped address of the timer control register (`TA0CTL`).
pub const TIMER_CONTROL: Addr = 0x0340;

/// Precision of a timer read, in CPU cycles.
pub const TIMER_PRECISION_CYCLES: u64 = 16;

/// A free-running, cycle-driven timer.
#[derive(Clone, Debug, Default)]
pub struct Timer {
    /// Total cycles observed since the last reset.
    cycles: u64,
    /// Whether the timer is running.
    pub running: bool,
}

impl Timer {
    /// Creates a stopped timer.
    pub fn new() -> Self {
        Timer {
            cycles: 0,
            running: false,
        }
    }

    /// Advances the timer by `cycles` CPU cycles (no-op when stopped).
    pub fn tick(&mut self, cycles: u64) {
        if self.running {
            self.cycles = self.cycles.wrapping_add(cycles);
        }
    }

    /// Starts (or resumes) the timer.
    pub fn start(&mut self) {
        self.running = true;
    }

    /// Stops the timer without clearing it.
    pub fn stop(&mut self) {
        self.running = false;
    }

    /// Clears the counter.
    pub fn clear(&mut self) {
        self.cycles = 0;
    }

    /// Raw cycle count (full precision, for the host-side harness only).
    pub fn raw_cycles(&self) -> u64 {
        self.cycles
    }

    /// The value firmware reads from `TA0R`: the cycle count quantised to
    /// [`TIMER_PRECISION_CYCLES`] and truncated to 16 bits, exactly the
    /// precision the paper reports.
    pub fn read_counter(&self) -> u16 {
        (self.cycles & !(TIMER_PRECISION_CYCLES - 1)) as u16
    }

    /// True when `addr` is one of the timer's memory-mapped registers.
    pub fn owns_register(addr: Addr) -> bool {
        let a = addr & !1;
        a == TIMER_COUNTER || a == TIMER_CONTROL
    }

    /// Handles a firmware read of a timer register.
    pub fn read_register(&self, addr: Addr) -> u16 {
        match addr & !1 {
            TIMER_COUNTER => self.read_counter(),
            TIMER_CONTROL if self.running => {
                0x0020 // MC = continuous mode
            }
            _ => 0,
        }
    }

    /// Handles a firmware write of a timer register.
    pub fn write_register(&mut self, addr: Addr, value: u16) {
        match addr & !1 {
            TIMER_COUNTER => self.cycles = value as u64,
            TIMER_CONTROL => {
                // Bit 5 (MC0 continuous) starts the timer; TACLR (bit 2)
                // clears it.
                if value & 0x0004 != 0 {
                    self.clear();
                }
                self.running = value & 0x0030 != 0;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopped_timer_does_not_advance() {
        let mut t = Timer::new();
        t.tick(100);
        assert_eq!(t.raw_cycles(), 0);
        t.start();
        t.tick(100);
        assert_eq!(t.raw_cycles(), 100);
        t.stop();
        t.tick(100);
        assert_eq!(t.raw_cycles(), 100);
    }

    #[test]
    fn reads_are_quantised_to_sixteen_cycles() {
        let mut t = Timer::new();
        t.start();
        t.tick(47);
        assert_eq!(t.read_counter(), 32);
        t.tick(1);
        assert_eq!(t.read_counter(), 48);
        assert_eq!(t.raw_cycles(), 48);
    }

    #[test]
    fn control_register_starts_clears_and_stops() {
        let mut t = Timer::new();
        t.write_register(TIMER_CONTROL, 0x0020);
        assert!(t.running);
        t.tick(64);
        t.write_register(TIMER_CONTROL, 0x0024); // clear + keep running
        assert_eq!(t.raw_cycles(), 0);
        assert!(t.running);
        t.write_register(TIMER_CONTROL, 0x0000);
        assert!(!t.running);
    }

    #[test]
    fn register_ownership() {
        assert!(Timer::owns_register(TIMER_COUNTER));
        assert!(Timer::owns_register(TIMER_CONTROL));
        assert!(
            Timer::owns_register(TIMER_COUNTER + 1),
            "odd byte of the register"
        );
        assert!(!Timer::owns_register(0x0360));
    }

    #[test]
    fn counter_write_sets_value() {
        let mut t = Timer::new();
        t.write_register(TIMER_COUNTER, 1234);
        assert_eq!(t.raw_cycles(), 1234);
    }
}
