//! Equivalence property for the bus's access-attribute cache.
//!
//! The flat per-address attribute table is a pure optimisation: for
//! arbitrary platforms, arbitrary MPU configurations (segmented, region
//! and extended), and arbitrary interleavings of configuration changes
//! with reads/writes/instruction fetches, a bus with the cache enabled
//! and a bus taking the direct `Mpu`/`RegionMpu`/`ExtendedMpu` path must
//! produce **identical results for every access** (same values, same
//! faults), **identical [`BusStats`] deltas**, and identical memory.

use amulet_core::addr::{Addr, AddrRange};
use amulet_core::layout::PlatformSpec;
use amulet_core::mpu_plan::{
    MpuConfig, MpuRegisterValues, PmpRegisterValues, RegionDesc, RegionRegisterValues,
};
use amulet_core::perm::Perm;
use amulet_mcu::bus::{Bus, BusStats};
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of a driven access/configuration sequence.
#[derive(Clone, Debug, PartialEq)]
enum Op {
    /// `Bus::read` of 1 or 2 bytes.
    Read { addr: Addr, size: u32 },
    /// `Bus::write` of 1 or 2 bytes.
    Write { addr: Addr, size: u32, value: u16 },
    /// `Bus::check_execute`.
    Exec { addr: Addr },
    /// Install a segmented MPU configuration (as the OS switch path does).
    Segmented {
        b1: u16,
        b2: u16,
        sam: u16,
        enable: bool,
    },
    /// Install a region MPU configuration.
    Region { regions: Vec<(Addr, Addr, u16)> },
    /// Install a PMP configuration: NAPOT entries drawn as
    /// (base bits, size exponent, perm), or the machine-mode toggle.
    Pmp {
        entries: Vec<(Addr, u32, u16)>,
        user_mode: bool,
    },
    /// Reconfigure the extended ("advanced") MPU ablation directly.
    Ext {
        segments: Vec<(Addr, Addr, u16)>,
        enabled: bool,
    },
    /// Power-on reset.
    Reset,
}

/// Addresses biased toward the interesting parts of the map (boundaries,
/// SRAM, FRAM, InfoMem, peripherals, holes) but covering everything,
/// including just past the 64 KiB space.
fn addr_strategy() -> impl Strategy<Value = Addr> {
    prop_oneof![
        0u32..0x1_0010,
        0x1800u32..0x2000,  // InfoMem and the hole behind it
        0x1C00u32..0x2400,  // SRAM
        0x4400u32..0x10000, // FRAM + vectors
        0x0000u32..0x0600,  // peripherals (incl. MPU register files)
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = |n: usize| vec((addr_strategy(), addr_strategy(), 0u16..8), 0..n);
    prop_oneof![
        (addr_strategy(), prop_oneof![Just(1u32), Just(2u32)])
            .prop_map(|(addr, size)| Op::Read { addr, size }),
        (
            addr_strategy(),
            prop_oneof![Just(1u32), Just(2u32)],
            0u16..0xFFFF
        )
            .prop_map(|(addr, size, value)| Op::Write { addr, size, value }),
        addr_strategy().prop_map(|addr| Op::Exec { addr }),
        (0u16..0x1000, 0u16..0x1000, 0u16..0x7777, any::<bool>()).prop_map(
            |(b1, b2, sam, enable)| Op::Segmented {
                b1,
                b2,
                sam,
                enable
            }
        ),
        span(4).prop_map(|regions| Op::Region { regions }),
        (
            vec((addr_strategy(), 0u32..9, 0u16..8), 0..4),
            any::<bool>()
        )
            .prop_map(|(entries, user_mode)| Op::Pmp { entries, user_mode }),
        (span(3), any::<bool>()).prop_map(|(segments, enabled)| Op::Ext { segments, enabled }),
        Just(Op::Reset),
    ]
}

/// Applies one op to a bus, returning a comparable outcome.
fn apply(bus: &mut Bus, op: &Op) -> Result<u16, String> {
    match op {
        Op::Read { addr, size } => bus.read(*addr, *size).map_err(|e| e.to_string()),
        Op::Write { addr, size, value } => bus
            .write(*addr, *size, *value)
            .map(|()| 0)
            .map_err(|e| e.to_string()),
        Op::Exec { addr } => bus
            .check_execute(*addr)
            .map(|()| 0)
            .map_err(|e| e.to_string()),
        Op::Segmented {
            b1,
            b2,
            sam,
            enable,
        } => {
            let regs = MpuRegisterValues {
                mpuctl0: 0xA500 | u16::from(*enable),
                mpusegb1: *b1,
                mpusegb2: *b2,
                mpusam: *sam,
            };
            bus.install_mpu_config(&MpuConfig::Segmented(regs))
                .map(|()| 0)
                .map_err(|e| e.to_string())
        }
        Op::Region { regions } => {
            let regions = regions
                .iter()
                .map(|(a, b, perm)| RegionDesc {
                    range: AddrRange::new((*a).min(*b) & 0xFFF0, (*a).max(*b) & 0xFFF0),
                    perm: Perm::from_bits(*perm),
                })
                .collect();
            bus.install_mpu_config(&MpuConfig::Region(RegionRegisterValues { regions }))
                .map(|()| 0)
                .map_err(|e| e.to_string())
        }
        Op::Pmp { entries, user_mode } => {
            let entries = entries
                .iter()
                .map(|(base_bits, k, perm)| {
                    // A NAPOT-valid range: power-of-two size, size-aligned
                    // base, clamped inside the 64 KiB space.
                    let size = 8u32 << k;
                    let base = (base_bits & 0xFFFF & !(size - 1)).min(0x1_0000 - size);
                    RegionDesc {
                        range: AddrRange::from_len(base, size),
                        perm: Perm::from_bits(*perm),
                    }
                })
                .collect();
            bus.install_mpu_config(&MpuConfig::Pmp(PmpRegisterValues {
                entries,
                user_mode: *user_mode,
            }))
            .map(|()| 0)
            .map_err(|e| e.to_string())
        }
        Op::Ext { segments, enabled } => {
            bus.ext_mpu.enabled = *enabled;
            bus.ext_mpu.segments = segments
                .iter()
                .map(|(a, b, perm)| {
                    (
                        AddrRange::new((*a).min(*b), (*a).max(*b)),
                        Perm::from_bits(*perm),
                    )
                })
                .collect();
            Ok(0)
        }
        Op::Reset => {
            bus.reset();
            Ok(0)
        }
    }
}

fn stats_tuple(s: &BusStats) -> (u64, u64, u64, u64, u64, u64) {
    (
        s.reads,
        s.writes,
        s.exec_checks,
        s.fram_writes,
        s.peripheral_writes,
        s.denied,
    )
}

fn drive(platform: PlatformSpec, ops: &[Op]) {
    let mut cached = Bus::new(platform.clone());
    let mut direct = Bus::new(platform);
    direct.set_attr_cache_enabled(false);
    for (i, op) in ops.iter().enumerate() {
        let a = apply(&mut cached, op);
        let b = apply(&mut direct, op);
        assert_eq!(a, b, "op {i} {op:?} diverged");
        assert_eq!(
            stats_tuple(&cached.stats),
            stats_tuple(&direct.stats),
            "op {i} {op:?} diverged in BusStats"
        );
    }
    assert_eq!(
        cached.dump_bytes(AddrRange::new(0, 0x1_0000)),
        direct.dump_bytes(AddrRange::new(0, 0x1_0000)),
        "memory contents diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Segmented platform (MSP430FR5969): cache and direct path agree on
    /// every access outcome and every stats counter, under arbitrary
    /// interleavings of MPU reconfiguration and traffic.
    #[test]
    fn cache_matches_oracle_on_the_segmented_platform(
        ops in vec(op_strategy(), 1..60),
    ) {
        drive(PlatformSpec::msp430fr5969(), &ops);
    }

    /// Region-MPU platform (FR5994-class profile): same equivalence, with
    /// the deny-by-default region backend as the oracle.
    #[test]
    fn cache_matches_oracle_on_the_region_platform(
        ops in vec(op_strategy(), 1..60),
    ) {
        drive(PlatformSpec::msp430fr5994(), &ops);
    }

    /// Cortex-M33-class platform: the aligned-region backend with
    /// jurisdiction over peripheral space as the oracle — the painter must
    /// track the jurisdiction, not a hardcoded range set.
    #[test]
    fn cache_matches_oracle_on_the_cortex_m33_platform(
        ops in vec(op_strategy(), 1..60),
    ) {
        drive(PlatformSpec::cortex_m33(), &ops);
    }

    /// RISC-V PMP platform: the NAPOT backend (full user-mode
    /// jurisdiction, machine-mode bypass) as the oracle.
    #[test]
    fn cache_matches_oracle_on_the_riscv_pmp_platform(
        ops in vec(op_strategy(), 1..60),
    ) {
        drive(PlatformSpec::riscv_pmp(), &ops);
    }
}

/// Deterministic exhaustive sweep: for a handful of fixed configurations,
/// compare the cache against the oracle for **every** address in the
/// 64 KiB space and every access kind — no sampling gaps.
#[test]
fn cache_matches_oracle_exhaustively() {
    let configs: Vec<(PlatformSpec, Vec<Op>)> = vec![
        (PlatformSpec::msp430fr5969(), vec![]),
        (
            PlatformSpec::msp430fr5969(),
            vec![Op::Segmented {
                b1: 0x600,
                b2: 0x800,
                sam: 0x1024,
                enable: true,
            }],
        ),
        (
            PlatformSpec::msp430fr5994(),
            vec![Op::Region {
                regions: vec![(0x5000, 0x5400, 0x4), (0x5400, 0x5800, 0x3)],
            }],
        ),
        (
            PlatformSpec::cortex_m33(),
            vec![Op::Region {
                regions: vec![(0x5000, 0x5400, 0x4), (0x5400, 0x5800, 0x3)],
            }],
        ),
        (
            PlatformSpec::riscv_pmp(),
            // User mode with two NAPOT entries: everything else inside the
            // full jurisdiction — peripherals included — is denied.
            vec![Op::Pmp {
                entries: vec![(0x5000, 7, 0x4), (0x5400, 7, 0x3)],
                user_mode: true,
            }],
        ),
        (
            PlatformSpec::riscv_pmp(),
            // Machine mode: the PMP checks nothing.
            vec![Op::Pmp {
                entries: vec![],
                user_mode: false,
            }],
        ),
    ];
    for (platform, setup) in configs {
        let mut cached = Bus::new(platform.clone());
        let mut direct = Bus::new(platform);
        direct.set_attr_cache_enabled(false);
        for op in &setup {
            apply(&mut cached, op).unwrap();
            apply(&mut direct, op).unwrap();
        }
        for addr in 0..0x1_0000u32 {
            let r = (
                cached.read(addr, 1).map_err(|e| e.cause),
                cached.write(addr, 1, 0xA5).map_err(|e| e.cause),
                cached.check_execute(addr).map_err(|e| e.cause),
            );
            let d = (
                direct.read(addr, 1).map_err(|e| e.cause),
                direct.write(addr, 1, 0xA5).map_err(|e| e.cause),
                direct.check_execute(addr).map_err(|e| e.cause),
            );
            assert_eq!(r, d, "divergence at {addr:#06x}");
        }
        assert_eq!(stats_tuple(&cached.stats), stats_tuple(&direct.stats));
    }
}
