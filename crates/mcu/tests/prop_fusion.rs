//! Equivalence properties for superinstruction fusion and block dispatch.
//!
//! Fusion is a pure dispatch optimisation: for arbitrary programs —
//! including the fusable shapes the AFT compiler emits (double bounds
//! checks, add-then-check strides, frame prologues/epilogues, adjacent
//! elision placeholders) interleaved with arbitrary straight-line code,
//! wild branches and memory traffic — a fused [`InstrStore`] must retire
//! the **identical** trace as the unfused store on every platform: same
//! [`StepEvent`] sequence, same [`CpuStats`], same cycles, same register
//! file and flags, same [`BusStats`] (execute checks included), same
//! timer ticks, same memory image.
//!
//! Independently, `Cpu::run_block` must be partition-invariant: slicing
//! a run into blocks of any sizes (1, 7, mixed, or one maximal block)
//! must not change what retires, even though small blocks gate the fused
//! fast path off at budget boundaries and large ones engage it.

use amulet_core::addr::{Addr, AddrRange};
use amulet_core::layout::PlatformSpec;
use amulet_mcu::bus::Bus;
use amulet_mcu::code::InstrStore;
use amulet_mcu::cpu::{Cpu, StepEvent};
use amulet_mcu::isa::{AluOp, Cond, Instr, Reg, UnaryOp, Width};
use proptest::collection::vec;
use proptest::prelude::*;

/// An instruction whose branch target (if any) is still a slot index
/// into the flattened program, resolved to a real address at layout time.
#[derive(Clone, Debug, PartialEq)]
enum P {
    /// A complete instruction with no intra-program target.
    I(Instr),
    /// `Jcc` to the instruction at slot `usize % len`.
    Jcc(Cond, usize),
    /// `Jmp` to the instruction at slot `usize % len`.
    Jmp(usize),
    /// `Call` of the instruction at slot `usize % len`.
    Call(usize),
}

const CONDS: [Cond; 8] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Lo,
    Cond::Hs,
    Cond::Lt,
    Cond::Ge,
    Cond::Mi,
    Cond::Pl,
];
const ALU_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
];
const UNARY_OPS: [UnaryOp; 5] = [
    UnaryOp::Neg,
    UnaryOp::Not,
    UnaryOp::Shl(3),
    UnaryOp::Shr(2),
    UnaryOp::Sar(1),
];

/// General-purpose-biased register: mostly `R4`–`R15`, occasionally the
/// architectural `PC`/`SP`/`SR` — sequences naming those must never fuse,
/// and the oracle checks the exclusion rather than trusting it.
fn reg_strategy() -> impl Strategy<Value = Reg> {
    prop_oneof![
        (4u8..16).prop_map(Reg),
        (4u8..16).prop_map(Reg),
        (4u8..16).prop_map(Reg),
        (0u8..16).prop_map(Reg),
    ]
}

/// Immediates biased toward the bounds AFT checks actually use (SRAM
/// edges) plus small strides and fully arbitrary words.
fn imm_strategy() -> impl Strategy<Value = u16> {
    prop_oneof![0u16..64, 0x1C00u16..0x2400, Just(0x2400u16), 0u16..0xFFFF,]
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    (0usize..CONDS.len()).prop_map(|i| CONDS[i])
}

/// One generator chunk: either a fusable multi-instruction shape (as the
/// AFT emits and `InstrStore::fuse` matches) or a single arbitrary
/// instruction.  Chunks are concatenated and laid out contiguously, so
/// fusable shapes land adjacent exactly as compiled code would.
fn chunk_strategy() -> impl Strategy<Value = Vec<P>> {
    let target = 0usize..256;
    prop_oneof![
        // Single bounds check: CmpImm + Jcc.
        (
            reg_strategy(),
            imm_strategy(),
            cond_strategy(),
            target.clone()
        )
            .prop_map(|(a, imm, cond, t)| vec![P::I(Instr::CmpImm { a, imm }), P::Jcc(cond, t)]),
        // Double bounds check: CmpImm + Jcc(Lo) + CmpImm + Jcc(Hs).
        (
            reg_strategy(),
            imm_strategy(),
            imm_strategy(),
            target.clone(),
            target.clone()
        )
            .prop_map(|(a, lo, hi, t1, t2)| vec![
                P::I(Instr::CmpImm { a, imm: lo }),
                P::Jcc(Cond::Lo, t1),
                P::I(Instr::CmpImm { a, imm: hi }),
                P::Jcc(Cond::Hs, t2),
            ]),
        // Stride advance then check: AluImm(Add) + CmpImm + Jcc.
        (
            reg_strategy(),
            0u16..16,
            imm_strategy(),
            cond_strategy(),
            target.clone()
        )
            .prop_map(|(dst, step, imm, cond, t)| vec![
                P::I(Instr::AluImm {
                    op: AluOp::Add,
                    dst,
                    imm: step,
                }),
                P::I(Instr::CmpImm { a: dst, imm }),
                P::Jcc(cond, t),
            ]),
        // Frame prologue: Push + Mov.
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(push, dst, src)| vec![
            P::I(Instr::Push { src: push }),
            P::I(Instr::Mov { dst, src }),
        ]),
        // Frame epilogue: Mov + Pop.
        (reg_strategy(), reg_strategy(), reg_strategy()).prop_map(|(dst, src, pop)| vec![
            P::I(Instr::Mov { dst, src }),
            P::I(Instr::Pop { dst: pop }),
        ]),
        // Adjacent elision placeholders (what `elide_checks` leaves behind).
        (1u8..4, 0u8..8, 1u8..4, 0u8..8).prop_map(|(w1, c1, w2, c2)| vec![
            P::I(Instr::Elided {
                words: w1,
                cycles: c1
            }),
            P::I(Instr::Elided {
                words: w2,
                cycles: c2
            }),
        ]),
        // A single arbitrary instruction.
        single_strategy().prop_map(|p| vec![p]),
    ]
}

/// A single arbitrary instruction, weighted toward the common cases but
/// covering memory traffic, wild control flow, syscalls and faults.
fn single_strategy() -> impl Strategy<Value = P> {
    let target = 0usize..256;
    prop_oneof![
        (reg_strategy(), imm_strategy()).prop_map(|(dst, imm)| P::I(Instr::MovImm { dst, imm })),
        (reg_strategy(), reg_strategy()).prop_map(|(dst, src)| P::I(Instr::Mov { dst, src })),
        (0usize..ALU_OPS.len(), reg_strategy(), reg_strategy()).prop_map(|(op, dst, src)| P::I(
            Instr::Alu {
                op: ALU_OPS[op],
                dst,
                src
            }
        )),
        (0usize..ALU_OPS.len(), reg_strategy(), imm_strategy()).prop_map(|(op, dst, imm)| P::I(
            Instr::AluImm {
                op: ALU_OPS[op],
                dst,
                imm
            }
        )),
        (0usize..UNARY_OPS.len(), reg_strategy()).prop_map(|(op, reg)| P::I(Instr::Unary {
            op: UNARY_OPS[op],
            reg
        })),
        (reg_strategy(), reg_strategy()).prop_map(|(a, b)| P::I(Instr::Cmp { a, b })),
        (reg_strategy(), imm_strategy()).prop_map(|(a, imm)| P::I(Instr::CmpImm { a, imm })),
        (reg_strategy(), reg_strategy(), -8i16..8).prop_map(|(dst, base, off)| P::I(Instr::Load {
            dst,
            base,
            offset: off * 2,
            width: Width::Word,
        })),
        (reg_strategy(), reg_strategy(), -8i16..8).prop_map(|(src, base, off)| P::I(
            Instr::Store {
                src,
                base,
                offset: off * 2,
                width: Width::Word,
            }
        )),
        (reg_strategy(), imm_strategy()).prop_map(|(dst, addr)| P::I(Instr::LoadAbs {
            dst,
            addr: addr & !1,
            width: Width::Word,
        })),
        (reg_strategy(), imm_strategy()).prop_map(|(src, addr)| P::I(Instr::StoreAbs {
            src,
            addr: addr & !1,
            width: Width::Word,
        })),
        reg_strategy().prop_map(|src| P::I(Instr::Push { src })),
        reg_strategy().prop_map(|dst| P::I(Instr::Pop { dst })),
        target.clone().prop_map(P::Jmp),
        target.clone().prop_map(P::Call),
        reg_strategy().prop_map(|reg| P::I(Instr::Br { reg })),
        Just(P::I(Instr::Ret)),
        (0u16..8).prop_map(|num| P::I(Instr::Syscall { num })),
        Just(P::I(Instr::Nop)),
    ]
}

/// A whole program: concatenated chunks.
fn program_strategy() -> impl Strategy<Value = Vec<P>> {
    vec(chunk_strategy(), 1..14).prop_map(|chunks| chunks.into_iter().flatten().collect())
}

const ORIGIN: Addr = 0x4400;

/// Lays the program out contiguously from [`ORIGIN`], resolves slot-index
/// branch targets to instruction-start addresses, and terminates it with
/// a `Halt` so straight-line fall-through stops.
fn assemble(program: &[P]) -> InstrStore {
    let mut addrs = Vec::with_capacity(program.len() + 1);
    let mut at = ORIGIN;
    for p in program {
        addrs.push(at);
        let size = match p {
            P::I(i) => i.size_bytes(),
            P::Jcc(..) | P::Jmp(..) | P::Call(..) => 4,
        };
        at += size;
    }
    addrs.push(at); // the trailing Halt is a valid target too
    let resolve = |idx: usize| addrs[idx % addrs.len()] as u16;
    let mut code = InstrStore::new();
    for (p, &addr) in program.iter().zip(&addrs) {
        let instr = match p {
            P::I(i) => *i,
            P::Jcc(cond, t) => Instr::Jcc {
                cond: *cond,
                target: resolve(*t),
            },
            P::Jmp(t) => Instr::Jmp {
                target: resolve(*t),
            },
            P::Call(t) => Instr::Call {
                target: resolve(*t),
            },
        };
        code.insert(addr, instr);
    }
    code.insert(at, Instr::Halt);
    code
}

/// Everything observable about a run, for exact comparison.
type Fingerprint = (
    Vec<StepEvent>,
    amulet_mcu::CpuStats,
    u64,       // cpu cycles
    [u16; 16], // register file
    u16,       // status word
    amulet_mcu::BusStats,
    u64,     // timer raw cycles
    Vec<u8>, // full memory image
);

/// Runs `code` from [`ORIGIN`] for at most `cap` steps, pulling block
/// sizes cyclically from `blocks`, collecting every stopping event.
/// Syscalls resume (the OS would service them); halts and faults end the
/// run.
fn run(platform: PlatformSpec, code: &InstrStore, cap: u64, blocks: &[u64]) -> Fingerprint {
    let mut cpu = Cpu::new();
    let mut bus = Bus::new(platform);
    cpu.set_pc(ORIGIN);
    cpu.set_sp(0x2400);
    let mut events = Vec::new();
    let mut total: u64 = 0;
    let mut bi = 0usize;
    while total < cap {
        let block = blocks[bi % blocks.len()].min(cap - total);
        bi += 1;
        let (ev, used) = cpu.run_block(&mut bus, code, block);
        total += used;
        if let Some(ev) = ev {
            events.push(ev);
            if matches!(ev, StepEvent::Halted | StepEvent::Fault(_)) {
                break;
            }
        }
    }
    let regs: [u16; 16] = core::array::from_fn(|i| cpu.reg(Reg(i as u8)));
    (
        events,
        cpu.stats,
        cpu.cycles,
        regs,
        cpu.status_word(),
        bus.stats,
        bus.timer.raw_cycles(),
        bus.dump_bytes(AddrRange::new(0, 0x1_0000)),
    )
}

const STEP_CAP: u64 = 3_000;

/// The five platform profiles the repo models.  The advanced-MPU ablation
/// disables the attribute fast path, so there the fused probe must
/// decline every sequence and fall back — the property covers both the
/// engaged and the permanently-declined regimes.
fn platforms() -> [PlatformSpec; 5] {
    [
        PlatformSpec::msp430fr5969(),
        PlatformSpec::msp430fr5969_advanced_mpu(),
        PlatformSpec::msp430fr5994(),
        PlatformSpec::cortex_m33(),
        PlatformSpec::riscv_pmp(),
    ]
}

/// Describes the first differing fingerprint field, compactly — the raw
/// tuples contain a 64 KiB memory image each.
fn diff(u: &Fingerprint, f: &Fingerprint) -> Option<String> {
    if u == f {
        return None;
    }
    Some(if u.0 != f.0 {
        format!("events {:?} vs {:?}", u.0, f.0)
    } else if u.1 != f.1 {
        format!("cpu stats {:?} vs {:?}", u.1, f.1)
    } else if u.2 != f.2 {
        format!("cycles {} vs {}", u.2, f.2)
    } else if u.3 != f.3 {
        format!("regs {:?} vs {:?}", u.3, f.3)
    } else if u.4 != f.4 {
        format!("flags {:#06x} vs {:#06x}", u.4, f.4)
    } else if u.5 != f.5 {
        format!("bus stats {:?} vs {:?}", u.5, f.5)
    } else if u.6 != f.6 {
        format!("timer {} vs {}", u.6, f.6)
    } else {
        let at = u.7.iter().zip(&f.7).position(|(a, b)| a != b).unwrap();
        format!("memory at {at:#06x}: {} vs {}", u.7[at], f.7[at])
    })
}

fn fused_matches_unfused(program: &[P]) -> Result<(), String> {
    let code = assemble(program);
    let mut fused = code.clone();
    fused.fuse();
    for platform in platforms() {
        let u = run(platform.clone(), &code, STEP_CAP, &[u64::MAX]);
        let f = run(platform.clone(), &fused, STEP_CAP, &[u64::MAX]);
        if let Some(d) = diff(&u, &f) {
            return Err(format!("fused run diverged on {}: {}", platform.name, d));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Tentpole oracle: fusing an arbitrary program changes nothing
    /// observable on any platform — events, counters, registers, flags,
    /// bus statistics, timer and memory are bit-identical.
    #[test]
    fn fusion_is_invisible_on_every_platform(program in program_strategy()) {
        let res = fused_matches_unfused(&program);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Block-partition invariance (fused store): slicing the same run
    /// into blocks of generated sizes — interleaved with the degenerate
    /// 1 and the awkward 7 — retires the identical trace as one maximal
    /// block, even though budget gating flips the fused path on and off
    /// at every boundary.
    #[test]
    fn run_block_is_partition_invariant(
        program in program_strategy(),
        sizes in vec(1u64..24, 1..8),
    ) {
        let code = assemble(&program);
        let mut fused = code.clone();
        fused.fuse();
        let mut blocks = vec![1, 7];
        blocks.extend(sizes);
        for store in [&code, &fused] {
            let whole = run(PlatformSpec::msp430fr5969(), store, STEP_CAP, &[u64::MAX]);
            let sliced = run(PlatformSpec::msp430fr5969(), store, STEP_CAP, &blocks);
            let d = diff(&whole, &sliced);
            prop_assert!(
                d.is_none(),
                "partitioned run diverged (fused: {}): {}",
                store.is_fused(),
                d.unwrap()
            );
        }
    }
}

/// The generator must actually produce fusable programs — otherwise the
/// oracle above tests nothing.  A deterministic fusable image fuses into
/// at least one sequence of every shape, and executes identically.
#[test]
fn generator_shapes_are_fusable_and_sound() {
    let program = vec![
        P::I(Instr::MovImm {
            dst: Reg::R14,
            imm: 0x1C10,
        }),
        // Double check (in range: falls through).
        P::I(Instr::CmpImm {
            a: Reg::R14,
            imm: 0x1C00,
        }),
        P::Jcc(Cond::Lo, 250),
        P::I(Instr::CmpImm {
            a: Reg::R14,
            imm: 0x2400,
        }),
        P::Jcc(Cond::Hs, 250),
        // Prologue + epilogue.
        P::I(Instr::Push { src: Reg::FP }),
        P::I(Instr::Mov {
            dst: Reg::FP,
            src: Reg::SP,
        }),
        P::I(Instr::Mov {
            dst: Reg::SP,
            src: Reg::FP,
        }),
        P::I(Instr::Pop { dst: Reg::FP }),
        // Add-then-check (branch not taken: R4 stays below the bound).
        P::I(Instr::AluImm {
            op: AluOp::Add,
            dst: Reg::R4,
            imm: 2,
        }),
        P::I(Instr::CmpImm {
            a: Reg::R4,
            imm: 0x4000,
        }),
        P::Jcc(Cond::Hs, 250),
        // Elided pair.
        P::I(Instr::Elided {
            words: 4,
            cycles: 4,
        }),
        P::I(Instr::Elided {
            words: 4,
            cycles: 4,
        }),
    ];
    let code = assemble(&program);
    let mut fused = code.clone();
    let report = fused.fuse();
    assert!(report.double_checks >= 1, "{report:?}");
    assert!(report.prologues >= 1, "{report:?}");
    assert!(report.epilogues >= 1, "{report:?}");
    assert!(report.add_checks >= 1, "{report:?}");
    assert!(report.elided_pairs >= 1, "{report:?}");
    fused_matches_unfused(&program).unwrap();
    // And the fused fast path genuinely engages on the default platform:
    // fewer per-instruction dispatches is unobservable, but a fused run
    // must still retire every instruction.
    let (events, stats, ..) = run(PlatformSpec::msp430fr5969(), &fused, STEP_CAP, &[u64::MAX]);
    assert_eq!(events.last(), Some(&StepEvent::Halted));
    assert_eq!(stats.faults, 0);
    assert!(stats.instructions >= program.len() as u64);
}
