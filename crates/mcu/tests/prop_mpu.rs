//! Property tests for the MPU hardware model: segment decoding is total over
//! the covered range, permission checks agree with their non-mutating
//! preview, and the register file round-trips arbitrary configurations.

use amulet_core::perm::{AccessKind, Perm};
use amulet_mcu::mpu::{Mpu, MpuDecision, MPUCTL0, MPUSAM, MPUSEGB1, MPUSEGB2};
use proptest::prelude::*;

fn access_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Read),
        Just(AccessKind::Write),
        Just(AccessKind::Execute),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any boundary configuration and any address, `check` and
    /// `would_allow` agree, violations latch a flag, and addresses outside
    /// FRAM/InfoMem are never policed.
    #[test]
    fn check_agrees_with_preview(
        b1_units in 0x440u16..0xFF8,
        b2_units in 0x440u16..0xFF8,
        sam in any::<u16>(),
        addr in 0u32..0x1_0000,
        kind in access_strategy(),
    ) {
        let mut mpu = Mpu::msp430fr5969();
        mpu.write_register(MPUSEGB1, b1_units.min(b2_units)).unwrap();
        mpu.write_register(MPUSEGB2, b1_units.max(b2_units)).unwrap();
        mpu.write_register(MPUSAM, sam).unwrap();
        mpu.write_register(MPUCTL0, 0xA501).unwrap();

        let preview = mpu.would_allow(addr, kind);
        let decision = mpu.check(addr, kind);
        prop_assert_eq!(preview, decision.permits());
        match decision {
            MpuDecision::NotCovered => {
                // SRAM, peripherals, BSL and vectors are never covered.
                prop_assert!(mpu.segment_of(addr).is_none());
            }
            MpuDecision::Violation(_) => {
                prop_assert!(mpu.violation_flags != 0);
                prop_assert!(mpu.violations >= 1);
            }
            MpuDecision::Allowed(seg) => {
                prop_assert!(mpu.segment_perm(seg).allows(kind.required_perm()));
            }
            // The segmented backend never produces region decisions.
            MpuDecision::AllowedRegion(_) | MpuDecision::ViolationRegion(_) => {
                prop_assert!(false, "segmented MPU produced a region decision");
            }
        }
    }

    /// Register writes round-trip: reading back SEGB1/SEGB2/SAM returns what
    /// was written, and the permission nibbles decode consistently.
    #[test]
    fn register_file_roundtrips(
        b1 in 0x440u16..0xFF8,
        b2 in 0x440u16..0xFF8,
        sam in any::<u16>(),
    ) {
        let mut mpu = Mpu::msp430fr5969();
        mpu.write_register(MPUSEGB1, b1).unwrap();
        mpu.write_register(MPUSEGB2, b2).unwrap();
        mpu.write_register(MPUSAM, sam & 0x7777).unwrap();
        prop_assert_eq!(mpu.read_register(MPUSEGB1), b1);
        prop_assert_eq!(mpu.read_register(MPUSEGB2), b2);
        prop_assert_eq!(mpu.read_register(MPUSAM), sam & 0x7777);
        prop_assert_eq!(mpu.seg1, Perm::from_bits(sam & 0x7));
        prop_assert_eq!(mpu.seg2, Perm::from_bits((sam >> 4) & 0x7));
        prop_assert_eq!(mpu.seg3, Perm::from_bits((sam >> 8) & 0x7));
    }

    /// A disabled MPU never denies anything, whatever was previously
    /// configured.
    #[test]
    fn disabled_mpu_is_permissive(
        addr in 0u32..0x1_0000,
        kind in access_strategy(),
        sam in any::<u16>(),
    ) {
        let mut mpu = Mpu::msp430fr5969();
        mpu.write_register(MPUSAM, sam).unwrap();
        // Never enabled.
        prop_assert!(mpu.check(addr, kind).permits());
    }
}
