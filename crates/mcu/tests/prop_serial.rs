//! Format-hardening battery for the v1 firmware serialization.
//!
//! Four layers of defence, per DESIGN §6:
//!
//! 1. **Round-trip properties** — arbitrary *built* firmwares (assembled
//!    through [`FirmwareBuilder`] across all five platform profiles, so every
//!    image here is one the AFT could have produced) satisfy
//!    `decode(encode(x)) == x` structurally and
//!    `encode(decode(encode(x))) == encode(x)` byte-for-byte.
//! 2. **Corruption battery** — truncation at *every* prefix length and a
//!    single-bit flip at *every* bit position of an encoded envelope must
//!    return `Err(_)`.  A panic anywhere fails the test, and any accidental
//!    `Ok` is cross-checked against a fresh encoding so a decoded-but-wrong
//!    image can never slip through.
//! 3. **Golden bytes** — a checked-in fixture pins the v1 wire format; any
//!    encoder change that moves a byte fails loudly and demands a version
//!    bump, not a silent format fork.
//! 4. **Shrink regression** — a deliberately falsified size bound on a
//!    `prop_map`-built instruction stream must shrink to fewer than 10
//!    elements, proving the vendored proptest shrinks *through* `prop_map`
//!    (the counterexample quality this battery depends on).

use std::collections::BTreeMap;

use amulet_core::layout::OsImageSpec;
use amulet_core::{
    builtin_platforms, fnv1a64, Addr, AppImageSpec, DecodeError, IsolationMethod, MemoryMap,
    MemoryMapPlanner, MpuPlan,
};
use amulet_mcu::{
    decode_firmware, encode_firmware, AluOp, AppBinary, Cond, Firmware, FirmwareBuilder, Instr,
    OsBinary, Reg, UnaryOp, Width,
};
use proptest::collection::vec;
use proptest::prelude::*;

const METHODS: [IsolationMethod; 4] = [
    IsolationMethod::NoIsolation,
    IsolationMethod::FeatureLimited,
    IsolationMethod::Mpu,
    IsolationMethod::SoftwareOnly,
];

// ---------------------------------------------------------------------------
// Fixture construction: real images via the builder, never struct literals.
// ---------------------------------------------------------------------------

fn planned_map(platform_idx: usize) -> MemoryMap {
    let spec = builtin_platforms()[platform_idx].clone();
    MemoryMapPlanner::new(spec)
        .unwrap()
        .plan(
            &OsImageSpec::default(),
            &[
                AppImageSpec::new("A", 0x400, 0x100, 0x80),
                AppImageSpec::new("B", 0x200, 0x80, 0x80),
            ],
        )
        .unwrap()
}

fn os_binary(map: &MemoryMap) -> OsBinary {
    OsBinary {
        mpu_config: MpuPlan::for_os_on(map).unwrap().config(&map.platform.mpu),
        initial_sp: map.os_initial_stack_pointer(),
    }
}

fn app_binary(
    map: &MemoryMap,
    index: usize,
    handlers: BTreeMap<String, Addr>,
    max_stack_estimate: Option<u32>,
) -> AppBinary {
    let placement = map.apps[index].clone();
    AppBinary {
        name: placement.name.clone(),
        index,
        initial_sp: placement.initial_stack_pointer(),
        mpu_config: MpuPlan::for_app_on(map, index)
            .unwrap()
            .config(&map.platform.mpu),
        placement,
        handlers,
        max_stack_estimate,
    }
}

/// Assemble a firmware the way the AFT would: app A carries the generated
/// instruction stream, app B a fixed stub, plus data + symbols.
fn build_firmware(
    platform_idx: usize,
    method: IsolationMethod,
    instrs: &[Instr],
    data: Vec<u8>,
    sym: u16,
    has_estimate: bool,
) -> Firmware {
    let map = planned_map(platform_idx);
    let mut b = FirmwareBuilder::new(method, map.clone(), os_binary(&map));

    let a_entry = map.apps[0].code.start;
    b.emit(a_entry, instrs);
    let b_entry = map.apps[1].code.start;
    b.emit(b_entry, &[Instr::Nop, Instr::Ret]);

    if !data.is_empty() {
        b.add_data(map.apps[0].data.start, data);
    }
    b.define_symbol("A::main", a_entry);
    b.define_symbol("scratch", Addr::from(sym));

    let mut a_handlers = BTreeMap::new();
    if !instrs.is_empty() {
        a_handlers.insert("on_timer".to_string(), a_entry);
    }
    let mut b_handlers = BTreeMap::new();
    b_handlers.insert("on_timer".to_string(), b_entry);

    let est = has_estimate.then_some(0x40);
    b.add_app(app_binary(&map, 0, a_handlers, est));
    b.add_app(app_binary(&map, 1, b_handlers, Some(0x20)));
    b.build().expect("generated firmware must validate")
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let reg = || (0u8..16).prop_map(Reg);
    let width = || any::<bool>().prop_map(|w| if w { Width::Word } else { Width::Byte });
    let alu_op = || {
        (0u8..8).prop_map(|n| {
            [
                AluOp::Add,
                AluOp::Sub,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Mul,
                AluOp::Div,
                AluOp::Rem,
            ][n as usize]
        })
    };
    prop_oneof![
        (reg(), any::<u16>()).prop_map(|(dst, imm)| Instr::MovImm { dst, imm }),
        (reg(), reg()).prop_map(|(dst, src)| Instr::Mov { dst, src }),
        (reg(), reg(), -64i16..64, width()).prop_map(|(dst, base, offset, width)| Instr::Load {
            dst,
            base,
            offset,
            width
        }),
        (reg(), reg(), -64i16..64, width()).prop_map(|(src, base, offset, width)| Instr::Store {
            src,
            base,
            offset,
            width
        }),
        reg().prop_map(|src| Instr::Push { src }),
        reg().prop_map(|dst| Instr::Pop { dst }),
        (alu_op(), reg(), reg()).prop_map(|(op, dst, src)| Instr::Alu { op, dst, src }),
        (alu_op(), reg(), any::<u16>()).prop_map(|(op, dst, imm)| Instr::AluImm { op, dst, imm }),
        (0u8..15, reg()).prop_map(|(n, r)| Instr::Unary {
            op: UnaryOp::Shl(n),
            reg: r
        }),
        (reg(), reg()).prop_map(|(a, b)| Instr::Cmp { a, b }),
        (any::<u16>()).prop_map(|target| Instr::Jcc {
            cond: Cond::Ne,
            target
        }),
        any::<u16>().prop_map(|num| Instr::Syscall { num }),
        Just(Instr::Ret),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

// ---------------------------------------------------------------------------
// 1. Round-trip properties over all five platforms.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `decode(encode(x)) == x` structurally, and re-encoding the decoded
    /// image is byte-identical — the format is canonical, not just stable.
    #[test]
    fn built_firmwares_round_trip(
        platform_idx in 0usize..5,
        method_idx in 0usize..4,
        instrs in vec(instr_strategy(), 0..48),
        data in vec(any::<u8>(), 0..64),
        sym in any::<u16>(),
        has_estimate in any::<bool>(),
    ) {
        let fw = build_firmware(
            platform_idx,
            METHODS[method_idx],
            &instrs,
            data,
            sym,
            has_estimate,
        );
        let bytes = encode_firmware("prop|roundtrip", &fw);
        let decoded = decode_firmware(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        let (key, back) = decoded.unwrap();
        prop_assert_eq!(key.as_str(), "prop|roundtrip");
        prop_assert_eq!(&back, &fw);
        prop_assert_eq!(encode_firmware("prop|roundtrip", &back), bytes);
    }
}

// ---------------------------------------------------------------------------
// 2. Corruption battery: totality under truncation and bit flips.
// ---------------------------------------------------------------------------

/// One representative encoded envelope per platform profile.
fn battery_fixtures() -> Vec<Vec<u8>> {
    (0..builtin_platforms().len())
        .map(|p| {
            let fw = build_firmware(
                p,
                METHODS[p % METHODS.len()],
                &[
                    Instr::MovImm {
                        dst: Reg::R4,
                        imm: 7,
                    },
                    Instr::Push { src: Reg::R4 },
                    Instr::Syscall { num: 2 },
                    Instr::Ret,
                ],
                vec![0xAB, 0xCD, 0xEF],
                0x2400,
                true,
            );
            encode_firmware("battery|fixture", &fw)
        })
        .collect()
}

/// Truncating an envelope at any strict prefix must yield a typed error.
#[test]
fn truncation_at_every_prefix_is_refused() {
    for bytes in battery_fixtures() {
        for len in 0..bytes.len() {
            let got = decode_firmware(&bytes[..len]);
            assert!(
                got.is_err(),
                "decode accepted a {len}-byte prefix of a {}-byte envelope",
                bytes.len()
            );
        }
    }
}

/// Flipping any single bit anywhere in the envelope must yield `Err(_)` —
/// the FNV-1a round `h = (h ^ b) * prime` is injective modulo 2^64 (the
/// prime is odd), so no single-bit change can leave the content hash fixed.
/// If a flip ever *were* accepted, the decoded image is re-encoded and
/// compared so a silently-wrong firmware still fails the test.
#[test]
fn every_single_bit_flip_is_refused() {
    for bytes in battery_fixtures() {
        for byte_idx in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte_idx] ^= 1 << bit;
                match decode_firmware(&corrupt) {
                    Err(_) => {}
                    Ok((key, fw)) => {
                        // Defence in depth: prove the image is not wrong.
                        assert_eq!(
                            encode_firmware(&key, &fw),
                            bytes,
                            "bit flip at byte {byte_idx} bit {bit} decoded to a \
                             different image without an error"
                        );
                        panic!(
                            "bit flip at byte {byte_idx} bit {bit} was accepted \
                             (hash failed to detect it)"
                        );
                    }
                }
            }
        }
    }
}

/// The corruption battery's error taxonomy is reachable: each guard in the
/// envelope (magic, version, hash, payload length, trailing bytes) reports
/// its own typed error rather than a generic failure.
#[test]
fn envelope_guards_report_typed_errors() {
    let bytes = battery_fixtures().remove(0);

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        decode_firmware(&bad_magic),
        Err(DecodeError::BadMagic)
    ));

    let mut bad_version = bytes.clone();
    bad_version[4] = 0xFF;
    bad_version[5] = 0xFF;
    assert!(matches!(
        decode_firmware(&bad_version),
        Err(DecodeError::UnsupportedVersion { version: 0xFFFF })
    ));

    let mut bad_body = bytes.clone();
    let last = bad_body.len() - 1;
    bad_body[last] ^= 0x01;
    assert!(matches!(
        decode_firmware(&bad_body),
        Err(DecodeError::HashMismatch { .. })
    ));

    assert!(matches!(
        decode_firmware(&[]),
        Err(DecodeError::UnexpectedEof { .. })
    ));
}

// ---------------------------------------------------------------------------
// 3. Golden bytes: the v1 wire format is pinned by a checked-in fixture.
// ---------------------------------------------------------------------------

fn golden_firmware() -> Firmware {
    build_firmware(
        0, // msp430fr5969
        IsolationMethod::Mpu,
        &[
            Instr::MovImm {
                dst: Reg::R4,
                imm: 0x1234,
            },
            Instr::Mov {
                dst: Reg::R5,
                src: Reg::R4,
            },
            Instr::AluImm {
                op: AluOp::Add,
                dst: Reg::R5,
                imm: 1,
            },
            Instr::Push { src: Reg::R5 },
            Instr::Syscall { num: 3 },
            Instr::Ret,
        ],
        vec![0x01, 0x02, 0x03, 0x04],
        0x2400,
        true,
    )
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/firmware_v1.bin");

/// FNV-1a64 of the canonical golden envelope.  If this assertion fires you
/// have changed the v1 wire format: bump `FORMAT_VERSION`, add a migration,
/// and regenerate the fixture with `BLESS_GOLDEN=1 cargo test -p amulet-mcu
/// golden` — do *not* just update the constant.
const GOLDEN_FNV: u64 = 0x75f4_72b9_e0a8_a4e1;

#[test]
fn golden_v1_fixture_is_byte_stable() {
    let bytes = encode_firmware("golden|v1", &golden_firmware());
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &bytes).expect("write golden fixture");
    }
    assert_eq!(
        fnv1a64(&bytes),
        GOLDEN_FNV,
        "encoder output changed — the v1 format is frozen; bump FORMAT_VERSION"
    );
    let fixture =
        std::fs::read(GOLDEN_PATH).expect("golden fixture missing; regenerate with BLESS_GOLDEN=1");
    assert_eq!(
        bytes, fixture,
        "encoder output no longer matches the checked-in v1 fixture"
    );
    let (key, fw) = decode_firmware(&fixture).expect("golden fixture must decode");
    assert_eq!(key, "golden|v1");
    assert_eq!(fw, golden_firmware());
}

// ---------------------------------------------------------------------------
// 4. Shrink regression: counterexamples shrink through `prop_map`.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Deliberately falsified: 4-byte count prefix + 3 bytes per (addr, tag)
    // entry means any stream of >= 7 instructions breaks the bound.  Declared
    // without `#[test]` — driven by the harness test below, which inspects
    // the shrunk counterexample.
    fn encoded_streams_stay_tiny(
        placed in vec(
            prop_oneof![Just(Instr::Nop), Just(Instr::Ret), Just(Instr::Halt)],
            0..40,
        )
        .prop_map(|instrs| {
            instrs
                .into_iter()
                .enumerate()
                .map(|(k, i)| (0x4400 + 2 * k as Addr, i))
                .collect::<Vec<(Addr, Instr)>>()
        }),
    ) {
        let store: amulet_mcu::InstrStore = placed.iter().cloned().collect();
        let bytes = amulet_core::Codec::to_bytes(&store);
        prop_assert!(
            bytes.len() <= 24,
            "encoded stream is {} bytes for {} instructions",
            bytes.len(),
            placed.len()
        );
    }
}

/// The falsified property above must report a *minimal* counterexample: the
/// vendored proptest shrinks `prop_map` outputs through their recorded
/// pre-image, so the 0..40-element stream must collapse to the smallest
/// failing size (7 elements) — well under the 10-element ceiling this
/// battery requires for debuggable serialization failures.
#[test]
fn serialization_counterexamples_shrink_below_ten_elements() {
    let err = std::panic::catch_unwind(encoded_streams_stay_tiny)
        .expect_err("falsified size bound must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload must be a string");
    let minimal = msg
        .split("minimal arguments:")
        .nth(1)
        .expect("failure report must include the minimal arguments section");
    let elements = minimal.matches("Nop").count()
        + minimal.matches("Ret").count()
        + minimal.matches("Halt").count();
    assert!(
        elements < 10,
        "counterexample did not shrink below 10 elements ({elements}):\n{msg}"
    );
    assert_eq!(
        elements, 7,
        "greedy shrink should reach the exact boundary (7 elements):\n{msg}"
    );
}
