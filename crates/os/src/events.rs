//! The event queue that drives application state machines.
//!
//! AmuletOS is event-driven: sensors, timers and user input produce events,
//! and the scheduler delivers each event by invoking the owning
//! application's handler function.

use std::collections::VecDeque;

/// The source of an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EventKind {
    /// An application timer armed with `amulet_set_timer` fired.
    Timer,
    /// New sensor data is available on a subscribed stream.
    Sensor,
    /// The user pressed a button / tapped the display.
    User,
    /// System housekeeping (battery warnings, etc.).
    System,
}

/// One event waiting for delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Index of the destination application.
    pub app_index: usize,
    /// Name of the handler function to invoke.
    pub handler: String,
    /// A single 16-bit payload passed as the handler's argument.
    pub payload: u16,
    /// What produced the event.
    pub kind: EventKind,
}

impl Event {
    /// Convenience constructor.
    pub fn new(
        app_index: usize,
        handler: impl Into<String>,
        payload: u16,
        kind: EventKind,
    ) -> Self {
        Event {
            app_index,
            handler: handler.into(),
            payload,
            kind,
        }
    }
}

/// A FIFO event queue.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    queue: VecDeque<Event>,
    /// Total events ever enqueued (for statistics).
    pub enqueued: u64,
    /// Total events ever delivered.
    pub delivered: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event to the back of the queue.
    pub fn push(&mut self, event: Event) {
        self.enqueued += 1;
        self.queue.push_back(event);
    }

    /// Removes the next event to deliver.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.delivered += 1;
        }
        e
    }

    /// Number of events currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let mut q = EventQueue::new();
        q.push(Event::new(0, "a", 1, EventKind::Timer));
        q.push(Event::new(1, "b", 2, EventKind::Sensor));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().handler, "a");
        assert_eq!(q.pop().unwrap().handler, "b");
        assert!(q.pop().is_none());
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.delivered, 2);
        assert!(q.is_empty());
    }
}
