//! The event queue that drives application state machines.
//!
//! AmuletOS is event-driven: sensors, timers and user input produce events,
//! and the scheduler delivers each event by invoking the owning
//! application's handler function.

use std::collections::VecDeque;

/// How the scheduler hands queued events to applications.
///
/// The paper's baseline pays a full OS→app→OS context-switch round trip for
/// every delivered event.  When events arrive in bursts for the same
/// application (accelerometer batches, queued timer ticks), the OS can
/// instead deliver a **batch** through one switch pair: the first event of
/// the batch installs the app's MPU configuration and switches stacks, the
/// intra-batch boundaries run through the trusted dispatch trampoline with
/// no state save/restore or MPU traffic, and the last event restores the OS
/// configuration.  App-visible behaviour (which handlers run, in which
/// order, with which payloads, and how faults are handled) is identical to
/// [`DeliveryPolicy::PerEvent`]; only the switch cost changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Every event pays the full switch round trip (the paper's model).
    #[default]
    PerEvent,
    /// Consecutive same-app events share one switch round trip.
    Batched {
        /// Largest number of events delivered through one switch pair.
        max_batch: usize,
        /// Latency bound for [`crate::os::AmuletOs::pump`]: once the
        /// **head event** has watched this many later arrivals go by while
        /// waiting at the front of the queue
        /// ([`EventQueue::head_wait_events`]), its batch is delivered even
        /// if no full batch has formed.  The bound is per waiting head
        /// event — a backlog elsewhere in the queue neither forces a
        /// premature partial flush nor lets an event wait unboundedly —
        /// and [`crate::os::AmuletOs::flush`] still drains everything.
        max_latency_events: usize,
    },
}

impl DeliveryPolicy {
    /// A conservative default batching configuration: batches of up to 8
    /// events, flushed once 16 events are pending.
    pub fn batched_default() -> Self {
        DeliveryPolicy::Batched {
            max_batch: 8,
            max_latency_events: 16,
        }
    }

    /// Whether this policy amortises switches over batches.
    pub fn is_batched(&self) -> bool {
        matches!(self, DeliveryPolicy::Batched { .. })
    }

    /// The largest batch this policy delivers through one switch pair
    /// (1 under [`DeliveryPolicy::PerEvent`]).
    pub fn max_batch(&self) -> usize {
        match self {
            DeliveryPolicy::PerEvent => 1,
            DeliveryPolicy::Batched { max_batch, .. } => (*max_batch).max(1),
        }
    }
}

/// The source of an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EventKind {
    /// An application timer armed with `amulet_set_timer` fired.
    Timer,
    /// New sensor data is available on a subscribed stream.
    Sensor,
    /// The user pressed a button / tapped the display.
    User,
    /// System housekeeping (battery warnings, etc.).
    System,
}

/// One event waiting for delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Index of the destination application.
    pub app_index: usize,
    /// Name of the handler function to invoke.
    pub handler: String,
    /// A single 16-bit payload passed as the handler's argument.
    pub payload: u16,
    /// What produced the event.
    pub kind: EventKind,
    /// Optional arrival timestamp in trace milliseconds.  The OS never
    /// reads it for scheduling; stamped events get a
    /// [`crate::os::DeliveryRecord`] when dispatched, which is how the
    /// time-stepped fleet runner measures delivery latency.  `None` (the
    /// [`Event::new`] default) records nothing.
    pub stamp_ms: Option<u64>,
}

impl Event {
    /// Convenience constructor (unstamped).
    pub fn new(
        app_index: usize,
        handler: impl Into<String>,
        payload: u16,
        kind: EventKind,
    ) -> Self {
        Event {
            app_index,
            handler: handler.into(),
            payload,
            kind,
            stamp_ms: None,
        }
    }

    /// Tags the event with its arrival time (trace milliseconds), enabling
    /// delivery-latency recording.
    pub fn stamped(mut self, at_ms: u64) -> Self {
        self.stamp_ms = Some(at_ms);
        self
    }
}

/// A FIFO event queue.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    queue: VecDeque<Event>,
    /// Events enqueued since the current head event became the head — the
    /// head's **wait**, in events watched going by.  Reset whenever the
    /// head changes (a pop installs a fresh head; a push into an empty
    /// queue makes the new event an instantly-fresh head).
    head_seen: usize,
    /// Total events ever enqueued (for statistics).
    pub enqueued: u64,
    /// Total events ever delivered.
    pub delivered: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event to the back of the queue.
    pub fn push(&mut self, event: Event) {
        self.enqueued += 1;
        if self.queue.is_empty() {
            // The pushed event *is* the head; it has watched nothing go by.
            self.head_seen = 0;
        } else {
            self.head_seen += 1;
        }
        self.queue.push_back(event);
    }

    /// Removes the next event to deliver.
    pub fn pop(&mut self) -> Option<Event> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.delivered += 1;
            // Whatever is in front now just became the head.
            self.head_seen = 0;
        }
        e
    }

    /// Removes any pending [`EventKind::Timer`] events for `app_index`,
    /// returning how many were removed.
    ///
    /// An application owns a **single** timer: `amulet_set_timer` re-arms
    /// it, it does not stack a second one.  The scheduler calls this before
    /// queueing a freshly-armed timer event so at most one timer event per
    /// app is ever pending — exactly the hardware's behaviour.
    pub fn cancel_timers_for(&mut self, app_index: usize) -> usize {
        let before = self.queue.len();
        let head_removed = self
            .queue
            .front()
            .is_some_and(|e| e.app_index == app_index && e.kind == EventKind::Timer);
        self.queue
            .retain(|e| !(e.app_index == app_index && e.kind == EventKind::Timer));
        if head_removed {
            // A successor inherits the head slot with a fresh wait (the
            // conservative choice: its own wait starts now).
            self.head_seen = 0;
        }
        before - self.queue.len()
    }

    /// How many events have been enqueued since the current head event
    /// became the head of the queue (0 when the queue is empty) — the
    /// head's wait, as the batched scheduler's latency bound measures it.
    pub fn head_wait_events(&self) -> usize {
        if self.queue.is_empty() {
            0
        } else {
            self.head_seen
        }
    }

    /// Removes the head event plus up to `max_batch - 1` immediately
    /// following events addressed to the *same* application.
    ///
    /// Only the consecutive head run is taken, so global FIFO order — and
    /// therefore each application's event order — is exactly what
    /// event-at-a-time delivery would produce.
    pub fn pop_batch(&mut self, max_batch: usize) -> Vec<Event> {
        let mut batch = Vec::new();
        let Some(first) = self.pop() else {
            return batch;
        };
        let app = first.app_index;
        batch.push(first);
        while batch.len() < max_batch.max(1) {
            match self.queue.front() {
                Some(next) if next.app_index == app => {
                    batch.push(self.pop().expect("front was Some"));
                }
                _ => break,
            }
        }
        batch
    }

    /// Length of the run of consecutive head events addressed to the same
    /// application (0 when the queue is empty).  The batching scheduler
    /// uses this to decide whether a full batch is ready.
    pub fn head_run_len(&self) -> usize {
        let Some(first) = self.queue.front() else {
            return 0;
        };
        self.queue
            .iter()
            .take_while(|e| e.app_index == first.app_index)
            .count()
    }

    /// Number of events currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let mut q = EventQueue::new();
        q.push(Event::new(0, "a", 1, EventKind::Timer));
        q.push(Event::new(1, "b", 2, EventKind::Sensor));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().handler, "a");
        assert_eq!(q.pop().unwrap().handler, "b");
        assert!(q.pop().is_none());
        assert_eq!(q.enqueued, 2);
        assert_eq!(q.delivered, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_takes_only_the_consecutive_same_app_run() {
        let mut q = EventQueue::new();
        q.push(Event::new(0, "a", 1, EventKind::Sensor));
        q.push(Event::new(0, "a", 2, EventKind::Sensor));
        q.push(Event::new(1, "b", 3, EventKind::Timer));
        q.push(Event::new(0, "a", 4, EventKind::Sensor));
        assert_eq!(q.head_run_len(), 2);
        let batch = q.pop_batch(8);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.app_index == 0));
        // The run after app 1's event was not pulled forward.
        assert_eq!(q.pop_batch(8).len(), 1);
        assert_eq!(q.pop_batch(8)[0].payload, 4);
        assert_eq!(q.delivered, 4);
    }

    #[test]
    fn cancel_timers_removes_only_that_apps_timer_events() {
        let mut q = EventQueue::new();
        q.push(Event::new(0, "on_timer", 1, EventKind::Timer));
        q.push(Event::new(1, "on_timer", 2, EventKind::Timer));
        q.push(Event::new(0, "on_tick", 3, EventKind::Sensor));
        assert_eq!(q.cancel_timers_for(0), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().app_index, 1);
        assert_eq!(q.pop().unwrap().kind, EventKind::Sensor);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(Event::new(0, "a", i, EventKind::Sensor));
        }
        assert_eq!(q.pop_batch(3).len(), 3);
        assert_eq!(q.pop_batch(3).len(), 2);
        assert_eq!(q.head_run_len(), 0);
    }

    #[test]
    fn head_wait_counts_arrivals_since_head_hood() {
        let mut q = EventQueue::new();
        assert_eq!(q.head_wait_events(), 0);
        q.push(Event::new(0, "a", 1, EventKind::Sensor));
        assert_eq!(q.head_wait_events(), 0, "a fresh head has waited 0");
        q.push(Event::new(1, "b", 2, EventKind::Sensor));
        q.push(Event::new(1, "b", 3, EventKind::Sensor));
        assert_eq!(q.head_wait_events(), 2, "two arrivals went by");
        q.pop();
        assert_eq!(
            q.head_wait_events(),
            0,
            "the successor's wait starts when it becomes head"
        );
        q.push(Event::new(0, "a", 4, EventKind::Sensor));
        assert_eq!(q.head_wait_events(), 1);
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.head_wait_events(), 0, "empty queue has no waiting head");
    }

    #[test]
    fn cancelling_the_head_timer_resets_the_wait() {
        let mut q = EventQueue::new();
        q.push(Event::new(0, "on_timer", 1, EventKind::Timer));
        q.push(Event::new(1, "b", 2, EventKind::Sensor));
        q.push(Event::new(1, "b", 3, EventKind::Sensor));
        assert_eq!(q.head_wait_events(), 2);
        assert_eq!(q.cancel_timers_for(0), 1);
        assert_eq!(q.head_wait_events(), 0, "new head starts fresh");
        // Cancelling a non-head timer leaves the head's wait alone.
        q.push(Event::new(0, "on_timer", 4, EventKind::Timer));
        assert_eq!(q.head_wait_events(), 1);
        assert_eq!(q.cancel_timers_for(0), 1);
        assert_eq!(q.head_wait_events(), 1);
    }

    #[test]
    fn stamping_is_optional_and_preserved() {
        let e = Event::new(0, "a", 1, EventKind::Sensor);
        assert_eq!(e.stamp_ms, None);
        assert_eq!(e.stamped(250).stamp_ms, Some(250));
    }

    #[test]
    fn delivery_policy_accessors() {
        assert!(!DeliveryPolicy::PerEvent.is_batched());
        assert_eq!(DeliveryPolicy::PerEvent.max_batch(), 1);
        let b = DeliveryPolicy::batched_default();
        assert!(b.is_batched());
        assert!(b.max_batch() > 1);
        assert_eq!(DeliveryPolicy::default(), DeliveryPolicy::PerEvent);
    }
}
