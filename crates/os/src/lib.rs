//! # amulet-os
//!
//! The AmuletOS runtime for the memory-isolation reproduction: an
//! event-driven scheduler that drives application state machines on the
//! simulated MSP430FR5969, a system-call API served against deterministic
//! synthetic sensors, per-app (or shared) stacks, MPU reconfiguration and
//! stack switching on every OS↔app transition, validation of
//! application-supplied pointers at the API boundary, and fault handling
//! with the restart policies sketched in the paper's discussion section.
//!
//! The central type is [`os::AmuletOs`]; a typical session is:
//!
//! ```
//! use amulet_aft::aft::{Aft, AppSource};
//! use amulet_core::method::IsolationMethod;
//! use amulet_os::os::AmuletOs;
//!
//! let firmware = Aft::new(IsolationMethod::Mpu)
//!     .add_app(AppSource::new(
//!         "Hello",
//!         "int n = 0; void main(void) { } int tick(int d) { n += d; amulet_log_value(n); return n; }",
//!         &["main", "tick"],
//!     ))
//!     .build()
//!     .unwrap()
//!     .firmware;
//! let mut os = AmuletOs::new(firmware);
//! os.boot();
//! os.call_handler(0, "tick", 5);
//! assert_eq!(os.services.log.last().unwrap().value, 5);
//! ```
//!
//! Event delivery is governed by an [`events::DeliveryPolicy`]: the paper's
//! per-event model pays a full context-switch round trip per event, while
//! batched delivery amortises one round trip over a run of consecutive
//! same-app events (see [`os::AmuletOs::pump`] and
//! [`os::AmuletOs::deliver_batch`]) without changing app-visible behaviour
//! — the fleet simulator (`amulet-fleet`) measures the difference at scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod os;
pub mod policy;
pub mod sensors;
pub mod syscalls;

pub use events::{DeliveryPolicy, Event, EventKind, EventQueue};
pub use os::{AmuletOs, AppRuntimeStats, DeliveryOutcome, DeliveryRecord, OsOptions};
pub use policy::{AppState, FaultAction, FaultHandler, FaultRecord, RestartPolicy};
pub use sensors::SensorModel;
pub use syscalls::{LogEntry, Services, SyscallArgs, SyscallOutcome};
