//! The AmuletOS runtime: scheduler, context switches, system-call servicing
//! and fault handling, running applications on the simulated device.
//!
//! The runtime follows §3 of the paper:
//!
//! * the OS drives each application's state machine by delivering events to
//!   its handler functions;
//! * on every OS↔app transition it swaps MPU configurations and stacks as
//!   the isolation method requires (see
//!   [`amulet_core::switch::ContextSwitchPlan`] — the same plan whose cycle
//!   costs appear in Table 1);
//! * application-provided pointers passed through API calls are validated
//!   against the calling app's bounds before the OS dereferences them;
//! * invalid accesses (MPU violations or compiler-inserted check failures)
//!   land in the FAULT handler, which logs the fault and applies the restart
//!   policy.

use crate::events::{DeliveryPolicy, Event, EventKind, EventQueue};
use crate::policy::{AppState, FaultAction, FaultHandler, RestartPolicy};
use crate::syscalls::{Services, SyscallArgs};
use amulet_aft::api::ApiSpec;
use amulet_core::addr::Addr;
use amulet_core::fault::FaultClass;
use amulet_core::method::IsolationMethod;
use amulet_core::switch::{ContextSwitchPlan, SwitchDirection};
use amulet_mcu::cpu::FaultInfo;
use amulet_mcu::device::{Device, StopReason};
use amulet_mcu::firmware::Firmware;
use amulet_mcu::isa::Reg;
use std::sync::Arc;

/// Configuration knobs for the runtime.
#[derive(Clone, Copy, Debug)]
pub struct OsOptions {
    /// What to do with applications that fault.
    pub restart_policy: RestartPolicy,
    /// Ablation A: when the isolation method shares a single stack between
    /// the OS and apps, zero the stack region whenever the running app
    /// changes (the cost the paper's per-app-stack design avoids).
    pub zero_shared_stack: bool,
    /// Seed for the synthetic sensors.
    pub sensor_seed: u32,
    /// Maximum instructions a single handler may execute before the OS
    /// declares it runaway and faults it.
    pub step_budget: u64,
    /// How queued events are handed to applications: one switch round trip
    /// per event (the paper's baseline) or one per batch of consecutive
    /// same-app events.
    pub delivery: DeliveryPolicy,
}

impl Default for OsOptions {
    fn default() -> Self {
        OsOptions {
            restart_policy: RestartPolicy::Kill,
            zero_shared_stack: false,
            sensor_seed: 0xA11CE,
            step_budget: 5_000_000,
            delivery: DeliveryPolicy::PerEvent,
        }
    }
}

/// Per-application runtime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppRuntimeStats {
    /// Events delivered to the app.
    pub events_delivered: u64,
    /// System calls the app made.
    pub syscalls: u64,
    /// Faults the app triggered.
    pub faults: u64,
    /// Cycles spent executing the app's own instructions.
    pub app_cycles: u64,
    /// Cycles spent on OS↔app context switching on the app's behalf.
    pub switch_cycles: u64,
    /// Cycles spent inside OS service bodies on the app's behalf.
    pub service_cycles: u64,
    /// Full directed OS↔app transitions charged (each direction counts 1).
    pub full_switches: u64,
    /// Intra-batch delivery boundaries charged instead of a full switch
    /// pair (always 0 under [`DeliveryPolicy::PerEvent`]).
    pub batch_boundaries: u64,
}

impl AppRuntimeStats {
    /// All cycles attributable to this app.
    pub fn total_cycles(&self) -> u64 {
        self.app_cycles + self.switch_cycles + self.service_cycles
    }
}

/// The dispatch record of one **stamped** event (see [`Event::stamped`]):
/// when the scheduler took the event up, on the device's cycle clock.
///
/// Unstamped events (boot `main`s, timer re-arms the OS queues itself)
/// record nothing, so runs that never stamp pay nothing and see an empty
/// log.  The time-stepped fleet runner stamps every trace arrival and
/// joins these records against its virtual clock to compute per-event
/// delivery latency — including events that were queued while the device
/// was busy or deferred by the batching policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// The arrival stamp the event carried (trace milliseconds).
    pub stamp_ms: u64,
    /// Device cycle counter at the moment the scheduler dispatched the
    /// event (before its switch/boundary was charged).
    pub at_cycles: u64,
    /// The destination application.
    pub app_index: usize,
}

/// Why a delivery finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The handler ran to completion.
    Completed,
    /// The handler faulted (and the restart policy was applied).
    Faulted(FaultClass),
    /// The app is killed or has no such handler; nothing ran.
    Skipped,
}

/// Precomputed directed context-switch cycle costs.
///
/// A switch's cost is a pure function of platform × method × direction ×
/// pointer-argument count, but building a [`ContextSwitchPlan`] allocates
/// its step list — measurable when the fleet simulator charges two switches
/// per delivered event across hundreds of thousands of events.  The
/// runtime therefore computes the costs once at boot and charges from this
/// table; the plan type remains the single source of truth for the values.
#[derive(Clone, Debug)]
struct SwitchCostCache {
    /// Cost of the OS → app transition (never validates pointers).
    os_to_app: u64,
    /// Cost of the app → OS transition, indexed by pointer-argument count.
    app_to_os: Vec<u64>,
}

/// Pointer-argument counts precomputed in [`SwitchCostCache::app_to_os`]
/// (no Amulet API call passes more; higher counts fall back to building
/// the plan).
const MAX_CACHED_POINTER_ARGS: u32 = 4;

impl SwitchCostCache {
    fn new(platform: &amulet_core::layout::PlatformSpec, method: IsolationMethod) -> Self {
        SwitchCostCache {
            os_to_app: ContextSwitchPlan::new_for(platform, method, SwitchDirection::OsToApp, 0)
                .cycles(),
            app_to_os: (0..=MAX_CACHED_POINTER_ARGS)
                .map(|n| {
                    ContextSwitchPlan::new_for(platform, method, SwitchDirection::AppToOs, n)
                        .cycles()
                })
                .collect(),
        }
    }
}

/// The AmuletOS runtime.
#[derive(Debug)]
pub struct AmuletOs {
    /// The simulated device the firmware runs on.
    pub device: Device,
    firmware: Arc<Firmware>,
    api: ApiSpec,
    /// OS services (sensors, log, display).
    pub services: Services,
    /// The pending event queue.
    pub queue: EventQueue,
    /// The fault handler and its records.
    pub faults: FaultHandler,
    /// Per-app lifecycle states.
    app_states: Vec<AppState>,
    /// Per-app statistics.
    pub stats: Vec<AppRuntimeStats>,
    /// Event-stream subscriptions (app index, stream id).
    pub subscriptions: Vec<(usize, u16)>,
    /// Dispatch records of stamped events, in dispatch order (empty unless
    /// the caller stamps events; see [`DeliveryRecord`]).
    pub delivery_log: Vec<DeliveryRecord>,
    options: OsOptions,
    method: IsolationMethod,
    switch_costs: SwitchCostCache,
    last_app_on_shared_stack: Option<usize>,
    /// Set when the running handler called `amulet_yield`; consumed by the
    /// batch-delivery machinery to end the current batch early.
    pending_yield: bool,
}

impl AmuletOs {
    /// Boots the runtime with a firmware image and default options.
    pub fn new(firmware: Firmware) -> Self {
        Self::with_options(firmware, OsOptions::default())
    }

    /// Boots the runtime with explicit options: the simulated device is
    /// built for whatever platform the firmware was linked against.
    pub fn with_options(firmware: Firmware, options: OsOptions) -> Self {
        Self::with_options_shared(Arc::new(firmware), options)
    }

    /// [`AmuletOs::with_options`] for an already-shared firmware image: the
    /// runtime holds a reference instead of cloning the image, so creating
    /// many runtimes from one build (the fleet case) costs no instruction
    /// store or metadata copies.
    pub fn with_options_shared(firmware: Arc<Firmware>, options: OsOptions) -> Self {
        let mut device = Device::new(firmware.memory_map.platform.clone());
        device.load_firmware_shared(Arc::clone(&firmware));
        device.bus.timer.start();
        let method = firmware.method;
        let switch_costs = SwitchCostCache::new(&firmware.memory_map.platform, method);
        let mut os = AmuletOs {
            device,
            api: ApiSpec::amulet(),
            services: Services::default(),
            queue: EventQueue::new(),
            faults: FaultHandler::default(),
            app_states: Vec::new(),
            stats: Vec::new(),
            subscriptions: Vec::new(),
            delivery_log: Vec::new(),
            options,
            method,
            switch_costs,
            firmware,
            last_app_on_shared_stack: None,
            pending_yield: false,
        };
        os.install_fresh_state();
        os
    }

    /// (Re-)initialises every piece of runtime state that must be cleared
    /// for a fresh run — the single source of truth shared by
    /// [`AmuletOs::with_options`] and [`AmuletOs::reset`] so the two can
    /// never drift.
    fn install_fresh_state(&mut self) {
        let app_count = self.firmware.apps.len();
        self.services = Services::new(self.options.sensor_seed);
        self.queue = EventQueue::new();
        self.faults = FaultHandler::new(self.options.restart_policy, app_count);
        self.app_states = vec![AppState::Active; app_count];
        self.stats = vec![AppRuntimeStats::default(); app_count];
        self.subscriptions.clear();
        self.delivery_log.clear();
        self.last_app_on_shared_stack = None;
        self.pending_yield = false;
    }

    /// Restores the runtime (and its device) to the freshly-loaded,
    /// pre-[`boot`](AmuletOs::boot) state without rebuilding or re-decoding
    /// the firmware image.  The fleet simulator uses this to run one device
    /// under several delivery policies; the expensive AFT build and
    /// instruction decode happen once.
    pub fn reset(&mut self) {
        self.device.reset();
        self.device.bus.timer.start();
        self.install_fresh_state();
    }

    /// The active delivery policy.
    pub fn delivery_policy(&self) -> DeliveryPolicy {
        self.options.delivery
    }

    /// Changes the delivery policy (takes effect at the next delivery).
    pub fn set_delivery_policy(&mut self, policy: DeliveryPolicy) {
        self.options.delivery = policy;
    }

    /// Changes the synthetic-sensor seed: the sensor RNG is re-seeded
    /// **immediately** and the seed is recorded for every future
    /// [`AmuletOs::reset`].  The fleet simulator uses this to reuse one
    /// runtime (decoded instruction store, bus attribute tables, API
    /// tables) across many simulated devices that share a firmware image
    /// but draw different sensor streams — and because the call applies in
    /// place, `reset(); set_sensor_seed(s)` and `set_sensor_seed(s);
    /// reset()` both leave the sensors in exactly the fresh-boot state for
    /// `s`: the previous device's RNG state can never leak through either
    /// ordering.  (Only the sensor RNG is touched; the log, display and
    /// dispatch counters are left for `reset` to clear.)
    pub fn set_sensor_seed(&mut self, seed: u32) {
        self.options.sensor_seed = seed;
        self.services.sensors = crate::sensors::SensorModel::new(seed);
    }

    /// The isolation method the loaded firmware was built for.
    pub fn method(&self) -> IsolationMethod {
        self.method
    }

    /// The firmware image the runtime is executing.  Fleet campaigns use
    /// this to compute attack targets from real placements and to
    /// serialise the running image for OTA re-install transactions.
    pub fn firmware(&self) -> &Arc<Firmware> {
        &self.firmware
    }

    /// Changes the restart policy, both for the live fault handler and for
    /// every future [`AmuletOs::reset`], so a shared runtime can serve
    /// devices with different watchdog configurations.  (Fault counts and
    /// backoff state are untouched; `reset` clears those.)
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.options.restart_policy = policy;
        self.faults.policy = policy;
    }

    /// Changes the watchdog step budget (maximum instructions one handler
    /// may execute).  Applies to the next delivery.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.options.step_budget = budget;
    }

    /// Number of installed applications.
    pub fn app_count(&self) -> usize {
        self.firmware.apps.len()
    }

    /// The lifecycle state of an app.
    pub fn app_state(&self, index: usize) -> AppState {
        self.app_states[index]
    }

    /// The name of an app.
    pub fn app_name(&self, index: usize) -> &str {
        &self.firmware.apps[index].name
    }

    /// Finds an app's index by name.
    pub fn app_index(&self, name: &str) -> Option<usize> {
        self.firmware.apps.iter().position(|a| a.name == name)
    }

    /// Total cycles elapsed on the device.
    pub fn total_cycles(&self) -> u64 {
        self.device.cycles()
    }

    /// Read-only view of the device's CPU execution statistics.  Cycle
    /// and energy accounting derive from [`Self::total_cycles`], so two
    /// runs can agree on `total_cycles` while retiring different
    /// instruction counts — exactly what check elision produces.
    pub fn cpu_stats(&self) -> amulet_mcu::cpu::CpuStats {
        self.device.cpu.stats
    }

    /// Delivers each app's `main` handler once (firmware boot).
    ///
    /// Only the boot events themselves are delivered here; events the apps
    /// arm during boot (timers, subscriptions) stay queued for the caller's
    /// scheduler loop.
    pub fn boot(&mut self) {
        let mut boot_events = 0;
        for i in 0..self.app_count() {
            if self.firmware.apps[i].handlers.contains_key("main") {
                self.queue.push(Event::new(i, "main", 0, EventKind::System));
                boot_events += 1;
            }
        }
        self.run_queue(boot_events);
    }

    /// Posts an event for later delivery.
    pub fn post_event(&mut self, event: Event) {
        self.queue.push(event);
    }

    /// Delivers up to `max_events` pending events; returns how many were
    /// delivered.  Under a batched policy, consecutive same-app events are
    /// grouped (never beyond `max_events`) and delivered through one switch
    /// pair each.
    pub fn run_queue(&mut self, max_events: usize) -> usize {
        let mut delivered = 0;
        while delivered < max_events {
            let room = max_events - delivered;
            let batch = self
                .queue
                .pop_batch(self.options.delivery.max_batch().min(room));
            if batch.is_empty() {
                break;
            }
            delivered += batch.len();
            self.deliver_batch(&batch);
        }
        delivered
    }

    /// Services pending events as the delivery policy allows, bounded by
    /// the number of events pending at call time (so handlers that enqueue
    /// further events cannot make one pump run forever).
    ///
    /// * [`DeliveryPolicy::PerEvent`] delivers everything pending;
    /// * [`DeliveryPolicy::Batched`] delivers only while a full batch is
    ///   ready at the queue head **or** the head event has waited through
    ///   `max_latency_events` later arrivals
    ///   ([`EventQueue::head_wait_events`]) — otherwise events keep
    ///   accumulating so a later pump can amortise the switch over a
    ///   bigger batch.  The latency bound is a property of the *waiting
    ///   head event*, not of the total queue length: a backlog of
    ///   unrelated other-app events cannot force a premature partial
    ///   flush of a freshly-arrived run, and a head event's wait counts
    ///   even when the events it waited through belonged to other apps.
    ///   [`flush`](Self::flush) delivers the stragglers.
    ///
    /// Returns how many events were delivered.
    pub fn pump(&mut self) -> usize {
        match self.options.delivery {
            DeliveryPolicy::PerEvent => self.flush(),
            DeliveryPolicy::Batched {
                max_batch,
                max_latency_events,
            } => {
                let budget = self.queue.len();
                let mut delivered = 0;
                while delivered < budget {
                    let full_batch_ready = self.queue.head_run_len() >= max_batch.max(1);
                    let latency_bound_hit =
                        self.queue.head_wait_events() >= max_latency_events.max(1);
                    if !full_batch_ready && !latency_bound_hit {
                        break;
                    }
                    let room = budget - delivered;
                    let batch = self.queue.pop_batch(max_batch.max(1).min(room));
                    if batch.is_empty() {
                        break;
                    }
                    delivered += batch.len();
                    self.deliver_batch(&batch);
                }
                delivered
            }
        }
    }

    /// [`pump`](Self::pump), also reporting the executed cycles the pump
    /// consumed — the per-pump totals the time-stepped fleet runner turns
    /// into virtual-clock advances.
    pub fn pump_counted(&mut self) -> (usize, u64) {
        let before = self.device.cycles();
        let delivered = self.pump();
        (delivered, self.device.cycles() - before)
    }

    /// [`flush`](Self::flush), also reporting the executed cycles consumed.
    pub fn flush_counted(&mut self) -> (usize, u64) {
        let before = self.device.cycles();
        let delivered = self.flush();
        (delivered, self.device.cycles() - before)
    }

    /// Delivers every event pending at call time, ignoring the batching
    /// thresholds (batches are still formed, so batched switch accounting
    /// applies).  Returns how many events were delivered.
    pub fn flush(&mut self) -> usize {
        let pending = self.queue.len();
        self.run_queue(pending)
    }

    /// Invokes one handler of one app synchronously (the benches use this to
    /// measure individual operations).  Returns the outcome and the cycles
    /// the delivery consumed.
    pub fn call_handler(
        &mut self,
        app_index: usize,
        handler: &str,
        payload: u16,
    ) -> (DeliveryOutcome, u64) {
        let before = self.device.cycles();
        let outcome = self.deliver(&Event::new(app_index, handler, payload, EventKind::System));
        (outcome, self.device.cycles() - before)
    }

    /// Delivers a single event (one full switch round trip).
    pub fn deliver(&mut self, event: &Event) -> DeliveryOutcome {
        self.deliver_batch(std::slice::from_ref(event))[0]
    }

    /// Delivers a batch of events addressed to a single application.
    ///
    /// The first event that actually runs pays the full OS→app switch; the
    /// boundaries between events of the batch run through the trusted
    /// dispatch trampoline (the app's MPU configuration is already
    /// installed, nothing needs saving or restoring) and are charged
    /// [`ContextSwitchPlan::batched_boundary_cycles`]; the last event pays
    /// the full app→OS switch.  Faults, missing handlers and `amulet_yield`
    /// fall back to full switches, so app-visible behaviour is identical to
    /// event-at-a-time delivery — only the switch cost differs.
    pub fn deliver_batch(&mut self, events: &[Event]) -> Vec<DeliveryOutcome> {
        let mut outcomes = Vec::with_capacity(events.len());
        // Whether the app's context is live because the previous event of
        // this batch elided its exit switch.
        let mut in_app = false;
        for (i, event) in events.iter().enumerate() {
            let idx = event.app_index;
            debug_assert!(
                events.iter().all(|e| e.app_index == idx),
                "a delivery batch must not span applications"
            );
            if let Some(stamp_ms) = event.stamp_ms {
                // The event's wait ends here: the scheduler has taken it up
                // (even if it is about to be skipped).  Recording reads the
                // clock only — it never advances it, so stamping cannot
                // perturb any simulated quantity.
                self.delivery_log.push(DeliveryRecord {
                    stamp_ms,
                    at_cycles: self.device.cycles(),
                    app_index: idx,
                });
            }
            if idx >= self.app_count() || self.app_states[idx] != AppState::Active {
                outcomes.push(DeliveryOutcome::Skipped);
                continue;
            }
            // Restart backoff: an app held back after a watchdog restart
            // forfeits deliveries until its backoff is spent.
            if self.faults.consume_backoff(idx) {
                outcomes.push(DeliveryOutcome::Skipped);
                continue;
            }
            let Some(&entry) = self.firmware.apps[idx].handlers.get(&event.handler) else {
                outcomes.push(DeliveryOutcome::Skipped);
                continue;
            };

            self.stats[idx].events_delivered += 1;

            // Ablation A: a shared stack must be scrubbed when the running
            // app changes, lest the new app read the previous app's stack
            // tailings.
            if self.options.zero_shared_stack
                && !self.method.uses_per_app_stacks()
                && self.last_app_on_shared_stack != Some(idx)
            {
                let stack = self.firmware.memory_map.os_stack;
                self.device.bus.fill(stack, 0);
                // One word written per cycle pair plus loop overhead.
                let words = (stack.len() / 2) as u64;
                self.charge_switch(idx, 2 * words + 10);
            }
            self.last_app_on_shared_stack = Some(idx);

            if in_app {
                // Intra-batch boundary: no MPU traffic, no save/restore.
                self.charge_batch_boundary(idx);
            } else {
                // OS → app half of the switch.
                self.switch_to_app(idx);
            }

            // Set up the handler call: argument word, then the sentinel
            // return address (pushed by `prepare_call`).
            let sp0 = self.app_stack_pointer(idx);
            let arg_sp = sp0.wrapping_sub(2) & 0xFFFF;
            self.device.bus.write_raw(arg_sp, 2, event.payload);
            self.device.prepare_call(entry, arg_sp);

            // The exit switch may be elided only when a later event of this
            // batch will actually run a handler.
            let later_runnable = events[i + 1..]
                .iter()
                .any(|e| self.firmware.apps[idx].handlers.contains_key(&e.handler));
            self.pending_yield = false;
            let (outcome, still_in_app) = self.run_app_until_return(idx, later_runnable);
            in_app = still_in_app;
            outcomes.push(outcome);
        }
        debug_assert!(
            !in_app,
            "a batch must end with the OS configuration installed"
        );
        outcomes
    }

    fn app_stack_pointer(&self, idx: usize) -> Addr {
        if self.method.uses_per_app_stacks() {
            self.firmware.apps[idx].initial_sp
        } else {
            self.firmware.os.initial_sp
        }
    }

    fn charge_switch(&mut self, idx: usize, cycles: u64) {
        self.device.charge_cycles(cycles);
        self.stats[idx].switch_cycles += cycles;
    }

    /// Charges the cheap intra-batch delivery boundary (handler-return trap
    /// plus next-event dispatch; see
    /// [`ContextSwitchPlan::batched_boundary_cycles`]).
    fn charge_batch_boundary(&mut self, idx: usize) {
        let cycles = ContextSwitchPlan::batched_boundary_cycles();
        self.charge_switch(idx, cycles);
        self.stats[idx].batch_boundaries += 1;
    }

    /// OS → app transition: charge the (precomputed) plan cost and install
    /// the app's MPU configuration by writing the real memory-mapped
    /// registers through the bus, exactly as the OS switch code does on
    /// hardware.  The install cannot fail: the OS never locks the MPU.
    fn switch_to_app(&mut self, idx: usize) {
        self.charge_switch(idx, self.switch_costs.os_to_app);
        self.stats[idx].full_switches += 1;
        if self.method.uses_mpu() {
            let _ = self
                .device
                .bus
                .install_mpu_config(&self.firmware.apps[idx].mpu_config);
        }
    }

    /// App → OS transition: charge the (precomputed) plan cost, including
    /// validation of any pointer arguments, and install the OS MPU
    /// configuration.
    fn switch_to_os(&mut self, idx: usize, pointer_args: u32) {
        let cycles = match self.switch_costs.app_to_os.get(pointer_args as usize) {
            Some(&c) => c,
            None => ContextSwitchPlan::new_for(
                &self.firmware.memory_map.platform,
                self.method,
                SwitchDirection::AppToOs,
                pointer_args,
            )
            .cycles(),
        };
        self.charge_switch(idx, cycles);
        self.stats[idx].full_switches += 1;
        if self.method.uses_mpu() {
            let _ = self
                .device
                .bus
                .install_mpu_config(&self.firmware.os.mpu_config);
        }
    }

    /// Validates an app-supplied pointer argument against the app's bounds
    /// (performed by the OS before dereferencing, for methods that allow
    /// pointers at all).
    fn pointer_arg_in_bounds(&self, idx: usize, ptr: u16) -> bool {
        let placement = &self.firmware.apps[idx].placement;
        placement.data_stack().contains(ptr as Addr)
    }

    /// Runs the app until its handler returns (or faults).  `elide_exit`
    /// allows the completion switch to be skipped because another event of
    /// the same batch follows; the second element of the return value says
    /// whether the app's context is still live (exit actually elided).
    fn run_app_until_return(&mut self, idx: usize, elide_exit: bool) -> (DeliveryOutcome, bool) {
        let mut steps_left = self.options.step_budget;
        loop {
            let exit = self.device.run(steps_left.max(1));
            self.stats[idx].app_cycles += exit.cycles;
            steps_left = steps_left.saturating_sub(exit.steps);
            match exit.reason {
                StopReason::HandlerDone | StopReason::Halted => {
                    if elide_exit && !self.pending_yield {
                        // Stay in the app's context: the next event of the
                        // batch is dispatched without a full switch.
                        return (DeliveryOutcome::Completed, true);
                    }
                    // App → OS on handler completion.
                    self.switch_to_os(idx, 0);
                    return (DeliveryOutcome::Completed, false);
                }
                StopReason::Syscall { num } => {
                    let args = SyscallArgs {
                        arg0: self.device.cpu.reg(Reg::R14),
                        arg1: self.device.cpu.reg(Reg::R15),
                    };
                    let pointer_args = self
                        .api
                        .by_num(num)
                        .map(|f| f.pointer_arg_count())
                        .unwrap_or(0);
                    self.stats[idx].syscalls += 1;

                    // App → OS.
                    let validate = self.method.allows_pointers() && self.method.inserts_checks();
                    self.switch_to_os(idx, if validate { pointer_args } else { 0 });

                    // Validate pointer arguments before the OS touches them.
                    if validate && pointer_args > 0 && !self.pointer_arg_in_bounds(idx, args.arg0) {
                        let info = FaultInfo {
                            class: FaultClass::ApiViolation,
                            pc: self.device.cpu.pc(),
                            addr: Some(args.arg0 as Addr),
                        };
                        return (self.handle_fault(idx, info), false);
                    }

                    // Service body.
                    let at = self.device.cycles();
                    let mut reader = {
                        let bus = &mut self.device.bus;
                        move |addr: Addr| bus.read_raw(addr, 2)
                    };
                    let outcome =
                        self.services
                            .dispatch(&self.api, idx, num, args, at, &mut reader);
                    self.device.charge_cycles(outcome.service_cycles);
                    self.stats[idx].service_cycles += outcome.service_cycles;

                    if let Some(ms) = outcome.timer_armed_ms {
                        if self.firmware.apps[idx].handlers.contains_key("on_timer") {
                            // An app owns one timer: re-arming replaces any
                            // still-pending timer event instead of stacking
                            // a second one.
                            self.queue.cancel_timers_for(idx);
                            self.queue
                                .push(Event::new(idx, "on_timer", ms, EventKind::Timer));
                        }
                    }
                    if let Some(stream) = outcome.subscribed_stream {
                        self.subscriptions.push((idx, stream));
                    }
                    if outcome.yielded {
                        self.pending_yield = true;
                    }

                    // OS → app, with the return value in R14.
                    self.switch_to_app(idx);
                    self.device.cpu.set_reg(Reg::R14, outcome.ret);
                }
                StopReason::Fault(info) => {
                    return (self.handle_fault(idx, info), false);
                }
                StopReason::StepLimit => {
                    let info = FaultInfo {
                        class: FaultClass::WatchdogBudget,
                        pc: self.device.cpu.pc(),
                        addr: None,
                    };
                    return (self.handle_fault(idx, info), false);
                }
            }
        }
    }

    fn handle_fault(&mut self, idx: usize, info: FaultInfo) -> DeliveryOutcome {
        self.stats[idx].faults += 1;
        // The FAULT handler logs app-specific information about the fault;
        // charge a modest fixed cost for that bookkeeping.
        self.charge_switch(idx, 60);
        // Make sure the OS configuration is back in force before the OS
        // touches anything.
        if self.method.uses_mpu() {
            let _ = self
                .device
                .bus
                .install_mpu_config(&self.firmware.os.mpu_config);
        }
        let name = self.firmware.apps[idx].name.clone();
        let action = self.faults.handle(idx, &name, info, self.device.cycles());
        match action {
            FaultAction::Killed => {
                self.app_states[idx] = AppState::Killed;
            }
            FaultAction::Restarted => {
                self.restart_app(idx);
            }
            FaultAction::Quarantined => {
                self.app_states[idx] = AppState::Quarantined;
            }
        }
        DeliveryOutcome::Faulted(info.class)
    }

    /// Reinitialises an app's data region from the firmware image (the
    /// restart policy from the paper's discussion section).
    fn restart_app(&mut self, idx: usize) {
        let placement = self.firmware.apps[idx].placement.clone();
        // Clear the whole data/stack segment, then re-copy initialisers.
        self.device.bus.fill(placement.data_stack(), 0);
        let segments: Vec<_> = self
            .firmware
            .data
            .iter()
            .filter(|s| placement.data_stack().contains(s.addr))
            .cloned()
            .collect();
        for seg in segments {
            self.device.bus.load_bytes(seg.addr, &seg.bytes);
        }
        self.app_states[idx] = AppState::Active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_aft::aft::{Aft, AppSource};

    const COUNTER_APP: &str = r#"
        int count = 0;
        void main(void) { amulet_subscribe(1); }
        int on_tick(int delta) {
            count += delta;
            amulet_log_value(count);
            return count;
        }
    "#;

    const WILD_APP: &str = r#"
        void main(void) { }
        int poke(int where) {
            int *p;
            p = where;
            *p = 99;
            return 1;
        }
    "#;

    fn build(method: IsolationMethod, sources: &[(&str, &str, &[&str])]) -> AmuletOs {
        let mut aft = Aft::new(method);
        for (name, src, handlers) in sources {
            aft = aft.add_app(AppSource::new(*name, *src, handlers));
        }
        AmuletOs::new(aft.build().unwrap().firmware)
    }

    #[test]
    fn boot_runs_main_and_records_subscriptions() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Counter", COUNTER_APP, &["main", "on_tick"])],
        );
        os.boot();
        assert_eq!(os.subscriptions, vec![(0, 1)]);
        assert_eq!(os.stats[0].events_delivered, 1);
        assert_eq!(os.stats[0].syscalls, 1);
    }

    #[test]
    fn events_drive_handlers_and_state_persists() {
        for method in IsolationMethod::ALL {
            // The counter app is pointer-free so it builds under every
            // method, including Feature Limited.
            let mut os = build(method, &[("Counter", COUNTER_APP, &["main", "on_tick"])]);
            os.boot();
            for i in 1..=5 {
                let (outcome, _) = os.call_handler(0, "on_tick", i);
                assert_eq!(outcome, DeliveryOutcome::Completed, "{method}");
            }
            // 1+2+3+4+5 = 15 logged last.
            assert_eq!(os.services.log.last().unwrap().value, 15, "{method}");
            assert_eq!(os.stats[0].syscalls, 1 + 5);
        }
    }

    #[test]
    fn wild_pointer_faults_and_kill_policy_disables_the_app() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Wild", WILD_APP, &["main", "poke"])],
        );
        os.boot();
        // Poke the OS data region (below the app): caught by the
        // compiler-inserted lower-bound check.
        let (outcome, _) = os.call_handler(0, "poke", 0x4500);
        assert!(matches!(
            outcome,
            DeliveryOutcome::Faulted(FaultClass::DataPointerLowerBound)
        ));
        assert_eq!(os.app_state(0), AppState::Killed);
        assert_eq!(os.faults.records.len(), 1);
        // Further deliveries are skipped.
        let (outcome, _) = os.call_handler(0, "poke", 0x4500);
        assert_eq!(outcome, DeliveryOutcome::Skipped);
    }

    #[test]
    fn wild_pointer_above_faults_through_the_mpu_hardware() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Wild", WILD_APP, &["main", "poke"])],
        );
        os.boot();
        // 0xF000 is above the app: no software check exists under the MPU
        // method, so this must be caught by the MPU itself.
        let (outcome, _) = os.call_handler(0, "poke", 0xF000);
        assert!(matches!(
            outcome,
            DeliveryOutcome::Faulted(FaultClass::MpuViolation)
        ));
    }

    #[test]
    fn no_isolation_lets_the_wild_write_corrupt_memory() {
        let mut os = build(
            IsolationMethod::NoIsolation,
            &[("Wild", WILD_APP, &["main", "poke"])],
        );
        os.boot();
        let target = 0x4500;
        let before = os.device.bus.read_raw(target, 2);
        let (outcome, _) = os.call_handler(0, "poke", target as u16);
        assert_eq!(outcome, DeliveryOutcome::Completed);
        assert_ne!(
            os.device.bus.read_raw(target, 2),
            before,
            "OS memory was silently corrupted"
        );
    }

    #[test]
    fn restart_policy_reinitialises_app_data() {
        let src = r#"
            int count = 7;
            void main(void) { }
            int crash(int x) {
                int *p;
                count += 1;
                p = 0x4400;
                *p = 1;
                return 0;
            }
            int get(int x) { return count; }
        "#;
        let out = Aft::new(IsolationMethod::SoftwareOnly)
            .add_app(AppSource::new("Restarty", src, &["main", "crash", "get"]))
            .build()
            .unwrap();
        let mut os = AmuletOs::with_options(
            out.firmware,
            OsOptions {
                restart_policy: RestartPolicy::Restart,
                ..OsOptions::default()
            },
        );
        os.boot();
        let (outcome, _) = os.call_handler(0, "crash", 0);
        assert!(matches!(outcome, DeliveryOutcome::Faulted(_)));
        assert_eq!(os.app_state(0), AppState::Active, "restarted, not killed");
        // The increment performed before the crash was rolled back by the
        // data reinitialisation.
        let (outcome, _) = os.call_handler(0, "get", 0);
        assert_eq!(outcome, DeliveryOutcome::Completed);
        assert_eq!(os.device.cpu.reg(Reg::R14), 7);
    }

    #[test]
    fn one_app_cannot_reach_anothers_data_under_mpu() {
        let victim = r#"
            int secret = 1234;
            void main(void) { }
            int get_secret(int x) { return secret; }
        "#;
        let attacker = r#"
            void main(void) { }
            int steal(int addr) {
                int *p;
                p = addr;
                return *p;
            }
        "#;
        let out = Aft::new(IsolationMethod::Mpu)
            .add_app(AppSource::new("Victim", victim, &["main", "get_secret"]))
            .add_app(AppSource::new("Attacker", attacker, &["main", "steal"]))
            .build()
            .unwrap();
        let victim_data = out.firmware.apps[0].placement.data.start;
        let mut os = AmuletOs::new(out.firmware);
        os.boot();
        // Attacker (app 1, above or below victim) tries to read the victim's
        // secret.  Victim sits below the attacker, so the *lower bound*
        // software check fires.
        let (outcome, _) = os.call_handler(1, "steal", victim_data as u16);
        assert!(
            matches!(outcome, DeliveryOutcome::Faulted(_)),
            "read was blocked"
        );
    }

    #[test]
    fn timer_syscall_schedules_a_timer_event() {
        let src = r#"
            int fired = 0;
            void main(void) { amulet_set_timer(250); }
            int on_timer(int ms) { fired = ms; return fired; }
        "#;
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Timed", src, &["main", "on_timer"])],
        );
        os.boot();
        // boot() delivered main, which armed the timer; the timer event is
        // now queued and carries the period as its payload.
        assert_eq!(os.queue.len(), 1);
        assert_eq!(os.run_queue(10), 1);
        assert_eq!(os.device.cpu.reg(Reg::R14), 250);
    }

    #[test]
    fn switch_overhead_matches_table1_ordering() {
        // Deliver the same pointer-free handler under each method and
        // compare per-delivery switch cycles: MPU must pay the most, the
        // shared-stack methods the least, Software Only in between.
        let mut per_method = std::collections::BTreeMap::new();
        for method in IsolationMethod::ALL {
            let mut os = build(method, &[("Counter", COUNTER_APP, &["main", "on_tick"])]);
            os.boot();
            let before = os.stats[0].switch_cycles;
            os.call_handler(0, "on_tick", 1);
            per_method.insert(method, os.stats[0].switch_cycles - before);
        }
        assert_eq!(
            per_method[&IsolationMethod::NoIsolation],
            per_method[&IsolationMethod::FeatureLimited]
        );
        assert!(
            per_method[&IsolationMethod::SoftwareOnly] > per_method[&IsolationMethod::NoIsolation]
        );
        assert!(per_method[&IsolationMethod::Mpu] > per_method[&IsolationMethod::SoftwareOnly]);
    }

    #[test]
    fn zero_shared_stack_ablation_costs_extra_cycles() {
        let apps: &[(&str, &str, &[&str])] = &[
            ("A", COUNTER_APP, &["main", "on_tick"]),
            ("B", COUNTER_APP, &["main", "on_tick"]),
        ];
        let build_fw = |method| {
            let mut aft = Aft::new(method);
            for (name, src, handlers) in apps {
                aft = aft.add_app(AppSource::new(*name, *src, handlers));
            }
            aft.build().unwrap().firmware
        };
        let mut plain = AmuletOs::new(build_fw(IsolationMethod::FeatureLimited));
        let mut zeroed = AmuletOs::with_options(
            build_fw(IsolationMethod::FeatureLimited),
            OsOptions {
                zero_shared_stack: true,
                ..OsOptions::default()
            },
        );
        for os in [&mut plain, &mut zeroed] {
            os.boot();
            // Alternate between apps so the zeroing path triggers.
            for i in 0..10 {
                os.call_handler(i % 2, "on_tick", 1);
            }
        }
        assert!(
            zeroed.total_cycles() > plain.total_cycles() + 1000,
            "zeroing the shared stack on every app change is visibly expensive"
        );
    }

    fn log_projection(os: &AmuletOs) -> Vec<(usize, i16)> {
        os.services
            .log
            .iter()
            .map(|l| (l.app_index, l.value))
            .collect()
    }

    #[test]
    fn batched_delivery_preserves_behaviour_and_saves_switch_cycles() {
        let run = |policy| {
            let mut os = build(
                IsolationMethod::Mpu,
                &[("Counter", COUNTER_APP, &["main", "on_tick"])],
            );
            os.set_delivery_policy(policy);
            os.boot();
            for i in 1..=6 {
                os.post_event(Event::new(0, "on_tick", i, EventKind::Sensor));
            }
            assert_eq!(os.flush(), 6);
            os
        };
        let per_event = run(DeliveryPolicy::PerEvent);
        let batched = run(DeliveryPolicy::Batched {
            max_batch: 3,
            max_latency_events: 8,
        });
        // App-visible behaviour is identical…
        assert_eq!(log_projection(&per_event), log_projection(&batched));
        assert_eq!(
            per_event.stats[0].events_delivered,
            batched.stats[0].events_delivered
        );
        assert_eq!(per_event.stats[0].syscalls, batched.stats[0].syscalls);
        assert_eq!(per_event.stats[0].faults, batched.stats[0].faults);
        // …only the switch accounting differs: 6 deliveries become 2
        // batches, replacing 4 full switches with 4 cheap boundaries.
        assert_eq!(per_event.stats[0].batch_boundaries, 0);
        assert_eq!(batched.stats[0].batch_boundaries, 4);
        // 6 per-event delivery round trips (12 directed switches) become 2
        // batch round trips (4 directed switches).
        assert_eq!(
            per_event.stats[0].full_switches,
            batched.stats[0].full_switches + 8
        );
        assert!(batched.stats[0].switch_cycles < per_event.stats[0].switch_cycles);
    }

    #[test]
    fn pump_defers_until_a_full_batch_or_the_latency_bound() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Counter", COUNTER_APP, &["main", "on_tick"])],
        );
        os.set_delivery_policy(DeliveryPolicy::Batched {
            max_batch: 2,
            max_latency_events: 10,
        });
        os.boot();
        os.post_event(Event::new(0, "on_tick", 1, EventKind::Sensor));
        assert_eq!(os.pump(), 0, "a lone event waits for a batch to form");
        os.post_event(Event::new(0, "on_tick", 2, EventKind::Sensor));
        assert_eq!(os.pump(), 2, "a full batch is delivered");
        os.post_event(Event::new(0, "on_tick", 3, EventKind::Sensor));
        assert_eq!(os.pump(), 0);
        assert_eq!(os.flush(), 1, "flush delivers the straggler");
        assert_eq!(os.services.log.last().unwrap().value, 1 + 2 + 3);
    }

    #[test]
    fn latency_bound_ignores_backlog_behind_a_fresh_head() {
        // Regression (shape 1): the latency bound used to trigger on total
        // queue length, so after a full batch was delivered, a backlog of
        // *other-app* events (len 4 >= max_latency_events) would force the
        // next head out as a premature one-event batch.  Bounding by the
        // head event's own wait lets the interleaved B/C runs keep
        // accumulating instead.
        let mut os = build(
            IsolationMethod::Mpu,
            &[
                ("A", COUNTER_APP, &["main", "on_tick"]),
                ("B", COUNTER_APP, &["main", "on_tick"]),
                ("C", COUNTER_APP, &["main", "on_tick"]),
            ],
        );
        os.set_delivery_policy(DeliveryPolicy::Batched {
            max_batch: 4,
            max_latency_events: 4,
        });
        os.boot();
        for (app, payload) in [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 5),
            (2, 6),
            (1, 7),
            (2, 8),
        ] {
            os.post_event(Event::new(app, "on_tick", payload, EventKind::Sensor));
        }
        // App 0's head run is a full batch and goes out; each B/C event
        // behind it becomes a fresh head that has waited through nothing.
        assert_eq!(os.pump(), 4, "only the full batch is delivered");
        assert_eq!(os.queue.len(), 4, "the B/C backlog keeps accumulating");
        assert_eq!(os.flush(), 4);
    }

    #[test]
    fn latency_bound_delivers_a_head_event_after_its_own_wait() {
        // Regression (shape 2): a lone app-B event at the head must be
        // delivered once *it* has waited through `max_latency_events`
        // arrivals — but its delivery must not drag app A's fresh run out
        // with it (the old queue-length bound flushed everything while the
        // length stayed at or above the bound).
        let mut os = build(
            IsolationMethod::Mpu,
            &[
                ("A", COUNTER_APP, &["main", "on_tick"]),
                ("B", COUNTER_APP, &["main", "on_tick"]),
            ],
        );
        os.set_delivery_policy(DeliveryPolicy::Batched {
            max_batch: 4,
            max_latency_events: 3,
        });
        os.boot();
        os.post_event(Event::new(1, "on_tick", 1, EventKind::Sensor));
        assert_eq!(os.pump(), 0, "a fresh head waits");
        for i in 0..2 {
            os.post_event(Event::new(0, "on_tick", i, EventKind::Sensor));
            assert_eq!(os.pump(), 0, "wait {i} below the bound");
        }
        os.post_event(Event::new(0, "on_tick", 9, EventKind::Sensor));
        // The head (app 1) has now watched 3 arrivals go by: deliver it —
        // and only it; app 0's run is fresh and keeps accumulating.
        assert_eq!(os.pump(), 1, "exactly the over-waited head goes out");
        assert_eq!(os.queue.len(), 3);
        assert_eq!(os.stats[1].events_delivered, 2, "boot main + the event");
        assert_eq!(os.flush(), 3);
    }

    #[test]
    fn stamped_events_record_dispatch_and_unstamped_events_do_not() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Counter", COUNTER_APP, &["main", "on_tick"])],
        );
        os.boot();
        assert!(os.delivery_log.is_empty(), "boot events are unstamped");
        os.post_event(Event::new(0, "on_tick", 1, EventKind::Sensor).stamped(250));
        os.post_event(Event::new(0, "on_tick", 2, EventKind::Sensor));
        os.flush();
        assert_eq!(os.delivery_log.len(), 1, "only the stamped event records");
        assert_eq!(os.delivery_log[0].stamp_ms, 250);
        assert_eq!(os.delivery_log[0].app_index, 0);
        assert!(os.delivery_log[0].at_cycles > 0);
        os.reset();
        assert!(os.delivery_log.is_empty(), "reset clears the log");
    }

    #[test]
    fn reseeding_after_reset_matches_a_fresh_boot_with_that_seed() {
        // Regression: `set_sensor_seed` used to take effect only at the
        // *next* reset, so the fleet's reuse path could leak the previous
        // device's sensor RNG state into `Services` if a re-seed landed
        // after the reset.  It now applies in place, making both orderings
        // equivalent to a fresh boot.
        let src = r#"
            void main(void) { }
            int sample(int x) {
                amulet_log_value(amulet_get_heart_rate());
                amulet_log_value(amulet_get_accel(0));
                return 0;
            }
        "#;
        let apps: &[(&str, &str, &[&str])] = &[("Sampler", src, &["main", "sample"])];
        let seed = 0xB0A7;
        let run = |os: &mut AmuletOs| -> Vec<i16> {
            os.boot();
            for i in 0..8 {
                os.call_handler(0, "sample", i);
            }
            os.services.log.iter().map(|l| l.value).collect()
        };
        let mut fresh = AmuletOs::with_options(
            Aft::new(IsolationMethod::Mpu)
                .add_app(AppSource::new(apps[0].0, apps[0].1, apps[0].2))
                .build()
                .unwrap()
                .firmware,
            OsOptions {
                sensor_seed: seed,
                ..OsOptions::default()
            },
        );
        let expected = run(&mut fresh);

        // A reused runtime: run with a different seed, reset, *then* seed.
        let mut reused = build(IsolationMethod::Mpu, apps);
        run(&mut reused);
        reused.reset();
        reused.set_sensor_seed(seed);
        assert_eq!(run(&mut reused), expected, "reset-then-seed replays");

        // And the opposite ordering (seed before reset) agrees too.
        let mut reused = build(IsolationMethod::Mpu, apps);
        run(&mut reused);
        reused.set_sensor_seed(seed);
        reused.reset();
        assert_eq!(run(&mut reused), expected, "seed-then-reset replays");
    }

    #[test]
    fn batched_faults_behave_like_per_event_faults() {
        let run = |policy| {
            let mut os = build(
                IsolationMethod::Mpu,
                &[("Wild", WILD_APP, &["main", "poke"])],
            );
            os.set_delivery_policy(policy);
            os.boot();
            // Three wild pokes: the first kills the app, the rest are
            // skipped — batched delivery must agree exactly.
            for _ in 0..3 {
                os.post_event(Event::new(0, "poke", 0xF000, EventKind::User));
            }
            os.flush();
            os
        };
        let per_event = run(DeliveryPolicy::PerEvent);
        let batched = run(DeliveryPolicy::Batched {
            max_batch: 4,
            max_latency_events: 8,
        });
        for os in [&per_event, &batched] {
            assert_eq!(os.stats[0].faults, 1);
            // Boot's `main` plus the first poke; the rest were skipped.
            assert_eq!(os.stats[0].events_delivered, 2);
            assert_eq!(os.app_state(0), AppState::Killed);
            assert_eq!(os.faults.records.len(), 1);
        }
        assert_eq!(
            per_event.faults.records[0].class,
            batched.faults.records[0].class
        );
    }

    #[test]
    fn yield_ends_the_batch_early() {
        let src = r#"
            int n = 0;
            void main(void) { }
            int tick(int d) { n += d; amulet_yield(); return n; }
        "#;
        let mut os = build(IsolationMethod::Mpu, &[("Yielder", src, &["main", "tick"])]);
        os.set_delivery_policy(DeliveryPolicy::Batched {
            max_batch: 4,
            max_latency_events: 8,
        });
        os.boot();
        for i in 1..=4 {
            os.post_event(Event::new(0, "tick", i, EventKind::User));
        }
        assert_eq!(os.flush(), 4);
        // Every handler yields, so no boundary is ever elided.
        assert_eq!(os.stats[0].batch_boundaries, 0);
        // Boot's `main` plus the four ticks.
        assert_eq!(os.stats[0].events_delivered, 5);
    }

    #[test]
    fn reset_replays_a_run_identically() {
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Counter", COUNTER_APP, &["main", "on_tick"])],
        );
        let run = |os: &mut AmuletOs| {
            os.boot();
            for i in 1..=3 {
                let (outcome, _) = os.call_handler(0, "on_tick", i);
                assert_eq!(outcome, DeliveryOutcome::Completed);
            }
            (os.total_cycles(), log_projection(os), os.stats.clone())
        };
        let first = run(&mut os);
        os.reset();
        assert_eq!(os.total_cycles(), 0);
        assert!(os.services.log.is_empty());
        let second = run(&mut os);
        assert_eq!(first, second, "a reset runtime replays the run exactly");
    }

    #[test]
    fn pointer_api_arguments_are_validated_by_the_os() {
        let src = r#"
            int buf[4] = {1, 2, 3, 4};
            void main(void) { }
            int good(int x) { amulet_log_buffer(&buf[0], 4); return 1; }
            int evil(int addr) { amulet_log_buffer(addr, 4); return 1; }
        "#;
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Logger", src, &["main", "good", "evil"])],
        );
        os.boot();
        let (outcome, _) = os.call_handler(0, "good", 0);
        assert_eq!(outcome, DeliveryOutcome::Completed);
        assert_eq!(os.services.log.len(), 1);
        // Passing an OS address to the API is rejected during argument
        // validation, before the OS dereferences it.
        let mut os = build(
            IsolationMethod::Mpu,
            &[("Logger", src, &["main", "good", "evil"])],
        );
        os.boot();
        let (outcome, _) = os.call_handler(0, "evil", 0x4600);
        assert!(matches!(
            outcome,
            DeliveryOutcome::Faulted(FaultClass::ApiViolation)
        ));
    }
}
