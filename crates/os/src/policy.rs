//! Fault handling and restart policies.
//!
//! When an application attempts an invalid memory access it "jumps to a
//! FAULT function to log app-specific information about the fault" (§3).
//! The paper's discussion section proposes richer error handling, such as
//! restart policies, as future work; this module implements those policies
//! so they can be evaluated.

use amulet_core::fault::FaultClass;
use amulet_mcu::cpu::FaultInfo;

/// What the OS does with an application after it faults.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestartPolicy {
    /// Disable the application until the firmware is reinstalled (the
    /// paper's baseline behaviour).
    #[default]
    Kill,
    /// Reinitialise the app's data and keep delivering events to it.
    Restart,
    /// Restart, but give up after the app has faulted `max_restarts` times.
    RestartWithLimit {
        /// Maximum restarts before the app is killed.
        max_restarts: u32,
    },
}

/// The lifecycle state of an installed application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppState {
    /// Running normally.
    Active,
    /// Disabled after a fault.
    Killed,
}

/// One logged fault, as recorded by the OS FAULT handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the faulting application.
    pub app_index: usize,
    /// Application name.
    pub app_name: String,
    /// Classification of the fault.
    pub class: FaultClass,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Data address involved, if any.
    pub addr: Option<u32>,
    /// Cycle count when the fault was handled.
    pub at_cycle: u64,
    /// What the policy decided.
    pub action: FaultAction,
}

/// The action the restart policy chose for a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The app was disabled.
    Killed,
    /// The app was restarted (data reinitialised).
    Restarted,
}

/// Tracks fault counts and applies the restart policy.
#[derive(Clone, Debug, Default)]
pub struct FaultHandler {
    /// The configured policy.
    pub policy: RestartPolicy,
    /// All recorded faults, in order.
    pub records: Vec<FaultRecord>,
    /// Per-app fault counts.
    pub per_app_faults: Vec<u32>,
}

impl FaultHandler {
    /// Creates a handler for `app_count` applications under `policy`.
    pub fn new(policy: RestartPolicy, app_count: usize) -> Self {
        FaultHandler {
            policy,
            records: Vec::new(),
            per_app_faults: vec![0; app_count],
        }
    }

    /// Records a fault and decides what to do with the app.
    pub fn handle(
        &mut self,
        app_index: usize,
        app_name: &str,
        info: FaultInfo,
        at_cycle: u64,
    ) -> FaultAction {
        if app_index >= self.per_app_faults.len() {
            self.per_app_faults.resize(app_index + 1, 0);
        }
        self.per_app_faults[app_index] += 1;
        let action = match self.policy {
            RestartPolicy::Kill => FaultAction::Killed,
            RestartPolicy::Restart => FaultAction::Restarted,
            RestartPolicy::RestartWithLimit { max_restarts } => {
                if self.per_app_faults[app_index] > max_restarts {
                    FaultAction::Killed
                } else {
                    FaultAction::Restarted
                }
            }
        };
        self.records.push(FaultRecord {
            app_index,
            app_name: app_name.to_string(),
            class: info.class,
            pc: info.pc,
            addr: info.addr,
            at_cycle,
            action,
        });
        action
    }

    /// Faults recorded for one app.
    pub fn faults_for(&self, app_index: usize) -> u32 {
        self.per_app_faults.get(app_index).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault() -> FaultInfo {
        FaultInfo {
            class: FaultClass::DataPointerLowerBound,
            pc: 0x8000,
            addr: Some(0x4400),
        }
    }

    #[test]
    fn kill_policy_always_kills() {
        let mut h = FaultHandler::new(RestartPolicy::Kill, 2);
        assert_eq!(h.handle(0, "A", fault(), 1), FaultAction::Killed);
        assert_eq!(h.handle(0, "A", fault(), 2), FaultAction::Killed);
        assert_eq!(h.faults_for(0), 2);
        assert_eq!(h.faults_for(1), 0);
    }

    #[test]
    fn restart_policy_always_restarts() {
        let mut h = FaultHandler::new(RestartPolicy::Restart, 1);
        for i in 0..5 {
            assert_eq!(h.handle(0, "A", fault(), i), FaultAction::Restarted);
        }
    }

    #[test]
    fn limited_restarts_eventually_kill() {
        let mut h = FaultHandler::new(RestartPolicy::RestartWithLimit { max_restarts: 2 }, 1);
        assert_eq!(h.handle(0, "A", fault(), 1), FaultAction::Restarted);
        assert_eq!(h.handle(0, "A", fault(), 2), FaultAction::Restarted);
        assert_eq!(h.handle(0, "A", fault(), 3), FaultAction::Killed);
    }

    #[test]
    fn records_carry_fault_details() {
        let mut h = FaultHandler::new(RestartPolicy::Kill, 1);
        h.handle(0, "HeartRate", fault(), 99);
        let r = &h.records[0];
        assert_eq!(r.app_name, "HeartRate");
        assert_eq!(r.class, FaultClass::DataPointerLowerBound);
        assert_eq!(r.at_cycle, 99);
        assert_eq!(r.addr, Some(0x4400));
    }
}
