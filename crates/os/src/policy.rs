//! Fault handling and restart policies.
//!
//! When an application attempts an invalid memory access it "jumps to a
//! FAULT function to log app-specific information about the fault" (§3).
//! The paper's discussion section proposes richer error handling, such as
//! restart policies, as future work; this module implements those policies
//! so they can be evaluated.

use amulet_core::fault::FaultClass;
use amulet_mcu::cpu::FaultInfo;

/// What the OS does with an application after it faults.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestartPolicy {
    /// Disable the application until the firmware is reinstalled (the
    /// paper's baseline behaviour).
    #[default]
    Kill,
    /// Reinitialise the app's data and keep delivering events to it.
    Restart,
    /// Restart, but give up after the app has faulted `max_restarts` times.
    RestartWithLimit {
        /// Maximum restarts before the app is killed.
        max_restarts: u32,
    },
    /// The watchdog policy for fault-injection campaigns: after each fault
    /// the app is restarted but *held back* for a number of deliveries that
    /// doubles per strike (`base_backoff << (strike-1)`, plus seeded
    /// jitter), and once it accumulates `max_strikes` faults it is
    /// quarantined — never delivered to again within the run.  The schedule
    /// is a pure function of `(jitter_seed, app index, strike)`, so storms
    /// terminate deterministically regardless of worker count.
    RestartWithBackoff {
        /// Deliveries skipped after the first strike; doubles per strike.
        base_backoff: u32,
        /// Faults tolerated before the app is quarantined.
        max_strikes: u32,
        /// Seed for the backoff jitter.
        jitter_seed: u64,
    },
}

/// The backoff delay (in skipped deliveries) the
/// [`RestartPolicy::RestartWithBackoff`] policy imposes after an app's
/// `strike`-th fault (1-based).  Exposed so property tests can pin the
/// schedule: it is a pure function of its arguments.
pub fn backoff_delay(base_backoff: u32, jitter_seed: u64, app_index: usize, strike: u32) -> u32 {
    let exp = strike.saturating_sub(1).min(16);
    let base = base_backoff.saturating_mul(1 << exp);
    // SplitMix64 finaliser over the (seed, app, strike) tuple: jitter is
    // deterministic per seed but decorrelated across apps and strikes.
    let mut z = jitter_seed
        ^ ((app_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ ((strike as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    base.saturating_add((z % u64::from(base_backoff.max(1)).max(1)) as u32)
}

/// The lifecycle state of an installed application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppState {
    /// Running normally.
    Active,
    /// Disabled after a fault.
    Killed,
    /// Permanently disabled after exhausting its
    /// [`RestartPolicy::RestartWithBackoff`] strikes.  Unlike
    /// [`AppState::Killed`] (which [`RestartPolicy::Restart`]-family
    /// policies may revive on the next fault cycle), quarantine is
    /// irreversible within a run.
    Quarantined,
}

/// One logged fault, as recorded by the OS FAULT handler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Index of the faulting application.
    pub app_index: usize,
    /// Application name.
    pub app_name: String,
    /// Classification of the fault.
    pub class: FaultClass,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Data address involved, if any.
    pub addr: Option<u32>,
    /// Cycle count when the fault was handled.
    pub at_cycle: u64,
    /// What the policy decided.
    pub action: FaultAction,
}

/// The action the restart policy chose for a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultAction {
    /// The app was disabled.
    Killed,
    /// The app was restarted (data reinitialised).
    Restarted,
    /// The app was quarantined: restarts are over for good.
    Quarantined,
}

/// Tracks fault counts and applies the restart policy.
#[derive(Clone, Debug, Default)]
pub struct FaultHandler {
    /// The configured policy.
    pub policy: RestartPolicy,
    /// All recorded faults, in order.
    pub records: Vec<FaultRecord>,
    /// Per-app fault counts.
    pub per_app_faults: Vec<u32>,
    /// Per-app deliveries still to be skipped (backoff after a restart).
    pub backoff_remaining: Vec<u32>,
}

impl FaultHandler {
    /// Creates a handler for `app_count` applications under `policy`.
    pub fn new(policy: RestartPolicy, app_count: usize) -> Self {
        FaultHandler {
            policy,
            records: Vec::new(),
            per_app_faults: vec![0; app_count],
            backoff_remaining: vec![0; app_count],
        }
    }

    /// Consumes one unit of an app's restart backoff: returns `true` (and
    /// decrements the counter) when the delivery must be skipped because
    /// the app is still being held back after a restart.
    pub fn consume_backoff(&mut self, app_index: usize) -> bool {
        match self.backoff_remaining.get_mut(app_index) {
            Some(left) if *left > 0 => {
                *left -= 1;
                true
            }
            _ => false,
        }
    }

    /// Records a fault and decides what to do with the app.
    pub fn handle(
        &mut self,
        app_index: usize,
        app_name: &str,
        info: FaultInfo,
        at_cycle: u64,
    ) -> FaultAction {
        if app_index >= self.per_app_faults.len() {
            self.per_app_faults.resize(app_index + 1, 0);
            self.backoff_remaining.resize(app_index + 1, 0);
        }
        self.per_app_faults[app_index] += 1;
        let action = match self.policy {
            RestartPolicy::Kill => FaultAction::Killed,
            RestartPolicy::Restart => FaultAction::Restarted,
            RestartPolicy::RestartWithLimit { max_restarts } => {
                if self.per_app_faults[app_index] > max_restarts {
                    FaultAction::Killed
                } else {
                    FaultAction::Restarted
                }
            }
            RestartPolicy::RestartWithBackoff {
                base_backoff,
                max_strikes,
                jitter_seed,
            } => {
                let strike = self.per_app_faults[app_index];
                if strike >= max_strikes.max(1) {
                    FaultAction::Quarantined
                } else {
                    self.backoff_remaining[app_index] =
                        backoff_delay(base_backoff, jitter_seed, app_index, strike);
                    FaultAction::Restarted
                }
            }
        };
        self.records.push(FaultRecord {
            app_index,
            app_name: app_name.to_string(),
            class: info.class,
            pc: info.pc,
            addr: info.addr,
            at_cycle,
            action,
        });
        action
    }

    /// Faults recorded for one app.
    pub fn faults_for(&self, app_index: usize) -> u32 {
        self.per_app_faults.get(app_index).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault() -> FaultInfo {
        FaultInfo {
            class: FaultClass::DataPointerLowerBound,
            pc: 0x8000,
            addr: Some(0x4400),
        }
    }

    #[test]
    fn kill_policy_always_kills() {
        let mut h = FaultHandler::new(RestartPolicy::Kill, 2);
        assert_eq!(h.handle(0, "A", fault(), 1), FaultAction::Killed);
        assert_eq!(h.handle(0, "A", fault(), 2), FaultAction::Killed);
        assert_eq!(h.faults_for(0), 2);
        assert_eq!(h.faults_for(1), 0);
    }

    #[test]
    fn restart_policy_always_restarts() {
        let mut h = FaultHandler::new(RestartPolicy::Restart, 1);
        for i in 0..5 {
            assert_eq!(h.handle(0, "A", fault(), i), FaultAction::Restarted);
        }
    }

    #[test]
    fn limited_restarts_eventually_kill() {
        let mut h = FaultHandler::new(RestartPolicy::RestartWithLimit { max_restarts: 2 }, 1);
        assert_eq!(h.handle(0, "A", fault(), 1), FaultAction::Restarted);
        assert_eq!(h.handle(0, "A", fault(), 2), FaultAction::Restarted);
        assert_eq!(h.handle(0, "A", fault(), 3), FaultAction::Killed);
    }

    #[test]
    fn backoff_policy_restarts_then_quarantines() {
        let policy = RestartPolicy::RestartWithBackoff {
            base_backoff: 4,
            max_strikes: 3,
            jitter_seed: 7,
        };
        let mut h = FaultHandler::new(policy, 1);
        assert_eq!(h.handle(0, "A", fault(), 1), FaultAction::Restarted);
        let first_backoff = h.backoff_remaining[0];
        assert_eq!(first_backoff, backoff_delay(4, 7, 0, 1));
        assert!(first_backoff >= 4, "strike 1 waits at least the base");
        assert_eq!(h.handle(0, "A", fault(), 2), FaultAction::Restarted);
        assert!(
            h.backoff_remaining[0] >= 8,
            "strike 2 at least doubles the base"
        );
        assert_eq!(h.handle(0, "A", fault(), 3), FaultAction::Quarantined);
    }

    #[test]
    fn consume_backoff_skips_exactly_the_scheduled_deliveries() {
        let policy = RestartPolicy::RestartWithBackoff {
            base_backoff: 2,
            max_strikes: 10,
            jitter_seed: 0xD00D,
        };
        let mut h = FaultHandler::new(policy, 1);
        h.handle(0, "A", fault(), 1);
        let wait = h.backoff_remaining[0];
        for _ in 0..wait {
            assert!(h.consume_backoff(0));
        }
        assert!(!h.consume_backoff(0));
        assert!(!h.consume_backoff(0));
    }

    #[test]
    fn backoff_delay_is_deterministic_and_seed_sensitive() {
        assert_eq!(backoff_delay(4, 99, 2, 3), backoff_delay(4, 99, 2, 3));
        let a: Vec<u32> = (1..6).map(|s| backoff_delay(4, 1, 0, s)).collect();
        let b: Vec<u32> = (1..6).map(|s| backoff_delay(4, 2, 0, s)).collect();
        assert_ne!(a, b, "different seeds must jitter differently");
        // Exponential floor regardless of jitter.
        for (i, d) in a.iter().enumerate() {
            assert!(*d >= 4 << i);
        }
    }

    #[test]
    fn records_carry_fault_details() {
        let mut h = FaultHandler::new(RestartPolicy::Kill, 1);
        h.handle(0, "HeartRate", fault(), 99);
        let r = &h.records[0];
        assert_eq!(r.app_name, "HeartRate");
        assert_eq!(r.class, FaultClass::DataPointerLowerBound);
        assert_eq!(r.at_cycle, 99);
        assert_eq!(r.addr, Some(0x4400));
    }
}
