//! Deterministic synthetic sensors.
//!
//! The real Amulet reads a heart-rate sensor, an accelerometer, a
//! thermometer, an ambient-light sensor and the battery gauge.  The
//! reproduction has no hardware, so the OS serves system calls from this
//! deterministic model instead; the waveforms are simple but exercise the
//! same code paths (sampling loops, thresholding, windowed statistics) the
//! real applications run.

/// Deterministic synthetic sensor state.
#[derive(Clone, Debug)]
pub struct SensorModel {
    /// Monotonic tick counter (advanced on every time read and every sensor
    /// sample).
    pub ticks: u64,
    /// Linear-congruential state for sensor noise (deterministic).
    lcg: u32,
    /// Battery level in percent (drains very slowly).
    pub battery_percent: u16,
}

impl Default for SensorModel {
    fn default() -> Self {
        Self::new(0x1234_5678)
    }
}

impl SensorModel {
    /// Creates a sensor model with the given noise seed.
    pub fn new(seed: u32) -> Self {
        SensorModel {
            ticks: 0,
            lcg: seed.max(1),
            battery_percent: 100,
        }
    }

    fn noise(&mut self, span: u16) -> i16 {
        // Numerical Recipes LCG; deterministic and cheap.
        self.lcg = self.lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        if span == 0 {
            return 0;
        }
        ((self.lcg >> 16) % (2 * span as u32 + 1)) as i16 - span as i16
    }

    /// Current time in ticks (advances by one per read).
    pub fn time(&mut self) -> u16 {
        self.ticks += 1;
        (self.ticks & 0xFFFF) as u16
    }

    /// Heart rate in beats per minute: a slow sinusoid-ish wander around 72
    /// plus noise.
    pub fn heart_rate(&mut self) -> u16 {
        self.ticks += 1;
        let phase = (self.ticks / 16 % 20) as i16 - 10;
        (72 + phase + self.noise(3)).clamp(40, 180) as u16
    }

    /// One accelerometer axis in milli-g: a periodic step-like waveform plus
    /// noise, so pedometer/activity algorithms see plausible peaks.
    pub fn accel(&mut self, axis: u16) -> i16 {
        self.ticks += 1;
        let stride = (self.ticks % 20) as i16;
        let swing = if stride < 4 { 900 } else { 100 };
        let axis_bias = (axis as i16 % 3) * 30;
        swing + axis_bias + self.noise(50)
    }

    /// Skin temperature in tenths of a degree Celsius.
    pub fn temperature(&mut self) -> i16 {
        self.ticks += 1;
        330 + self.noise(5)
    }

    /// Ambient light in lux-ish units (day/night square wave).
    pub fn light(&mut self) -> u16 {
        self.ticks += 1;
        if (self.ticks / 512).is_multiple_of(2) {
            (800 + self.noise(100)) as u16
        } else {
            (20 + self.noise(10)).max(0) as u16
        }
    }

    /// Battery level in percent (drains one percent every 4096 reads).
    pub fn battery(&mut self) -> u16 {
        self.ticks += 1;
        if self.ticks.is_multiple_of(4096) && self.battery_percent > 0 {
            self.battery_percent -= 1;
        }
        self.battery_percent
    }

    /// Raw sensor channel multiplexer used by `amulet_read_sensor`.
    pub fn raw_channel(&mut self, channel: u16) -> i16 {
        match channel % 5 {
            0 => self.heart_rate() as i16,
            1 => self.accel(0),
            2 => self.temperature(),
            3 => self.light() as i16,
            _ => self.battery() as i16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SensorModel::new(7);
        let mut b = SensorModel::new(7);
        let seq_a: Vec<i16> = (0..32).map(|_| a.accel(0)).collect();
        let seq_b: Vec<i16> = (0..32).map(|_| b.accel(0)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn heart_rate_stays_physiological() {
        let mut s = SensorModel::default();
        for _ in 0..1000 {
            let hr = s.heart_rate();
            assert!((40..=180).contains(&hr), "{hr}");
        }
    }

    #[test]
    fn accel_shows_periodic_peaks() {
        let mut s = SensorModel::default();
        let samples: Vec<i16> = (0..200).map(|_| s.accel(0)).collect();
        let peaks = samples.iter().filter(|&&v| v > 500).count();
        let troughs = samples.iter().filter(|&&v| v < 300).count();
        assert!(peaks > 10, "periodic high-g peaks present ({peaks})");
        assert!(troughs > 50, "quiet samples dominate ({troughs})");
    }

    #[test]
    fn battery_drains_monotonically() {
        let mut s = SensorModel::default();
        let start = s.battery();
        for _ in 0..20_000 {
            s.battery();
        }
        assert!(s.battery() < start);
    }

    #[test]
    fn time_advances() {
        let mut s = SensorModel::default();
        let t1 = s.time();
        let t2 = s.time();
        assert!(t2 > t1);
    }
}
