//! System-call services.
//!
//! Applications reach the OS only through the approved API enumerated in
//! `amulet_aft::api`; the AFT guarantees (at compile time) that no other
//! entry points exist.  Each service here returns its result plus the cycle
//! cost of the service body (the context-switch cost around it is charged by
//! the switching machinery, not here).

use crate::sensors::SensorModel;
use amulet_aft::api::{sysno, ApiSpec};
use amulet_core::addr::Addr;

/// A log entry written by `amulet_log_value` / `amulet_log_buffer`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Which application logged it.
    pub app_index: usize,
    /// Logged value (for buffer logs, the number of words copied).
    pub value: i16,
    /// Cycle timestamp.
    pub at_cycle: u64,
}

/// Arguments passed from the application to a system call (marshalled from
/// registers `R14`/`R15` by the trap path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyscallArgs {
    /// First argument register.
    pub arg0: u16,
    /// Second argument register.
    pub arg1: u16,
}

/// The outcome of servicing a system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Value returned to the application in `R14`.
    pub ret: u16,
    /// Cycles consumed by the service body.
    pub service_cycles: u64,
    /// Pointer arguments the trap path must have validated (count), used for
    /// accounting checks in tests.
    pub pointer_args: u32,
    /// A timer the application armed, in milliseconds (delivered by the
    /// scheduler as a future event).
    pub timer_armed_ms: Option<u16>,
    /// An event-stream subscription the application requested.
    pub subscribed_stream: Option<u16>,
    /// The application yielded (`amulet_yield`).  A scheduling hint: under
    /// batched delivery the OS ends the current batch after this event and
    /// restores its own configuration, bounding how long the app retains
    /// the CPU without a full switch.
    pub yielded: bool,
}

/// Per-syscall dispatch counters.
///
/// A flat array rather than a map: this is bumped on every system call,
/// which at fleet scale made a tree-map entry lookup measurable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallCounts([u64; SyscallCounts::BUCKETS]);

impl SyscallCounts {
    /// Counter buckets: numbers `0..=14` each get their own bucket (the
    /// API currently uses `0..=12`), and any number `>= 15` (an unknown
    /// syscall) shares the last, overflow bucket.  Widen this when the
    /// API table approaches 15 entries.
    const BUCKETS: usize = 16;

    /// Dispatches recorded for syscall `num`.
    pub fn get(&self, num: u16) -> u64 {
        self.0[(num as usize).min(Self::BUCKETS - 1)]
    }

    /// Total dispatches across all syscalls.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    #[inline]
    fn bump(&mut self, num: u16) {
        self.0[(num as usize).min(Self::BUCKETS - 1)] += 1;
    }
}

/// Persistent OS service state (sensors, log, display).
#[derive(Clone, Debug, Default)]
pub struct Services {
    /// The synthetic sensors.
    pub sensors: SensorModel,
    /// The system log.
    pub log: Vec<LogEntry>,
    /// Last value drawn on the display, per app.
    pub display: Vec<(usize, i16)>,
    /// Count of services dispatched, per syscall number.
    pub dispatch_counts: SyscallCounts,
}

impl Services {
    /// Creates the service state with a fixed sensor seed.
    pub fn new(seed: u32) -> Self {
        Services {
            sensors: SensorModel::new(seed),
            ..Default::default()
        }
    }

    /// Dispatches one system call.
    ///
    /// `read_word` lets buffer-taking services read application memory that
    /// the trap path has already bounds-checked.
    pub fn dispatch(
        &mut self,
        api: &ApiSpec,
        app_index: usize,
        num: u16,
        args: SyscallArgs,
        at_cycle: u64,
        read_word: &mut dyn FnMut(Addr) -> u16,
    ) -> SyscallOutcome {
        self.dispatch_counts.bump(num);
        // One table scan serves both fields (this runs for every syscall).
        let func = api.by_num(num);
        let service_cycles = func.map(|f| f.service_cycles).unwrap_or(8);
        let pointer_args = func.map(|f| f.pointer_arg_count()).unwrap_or(0);
        let mut out = SyscallOutcome {
            ret: 0,
            service_cycles,
            pointer_args,
            timer_armed_ms: None,
            subscribed_stream: None,
            yielded: false,
        };
        match num {
            sysno::YIELD => out.yielded = true,
            sysno::GET_TIME => out.ret = self.sensors.time(),
            sysno::READ_SENSOR => out.ret = self.sensors.raw_channel(args.arg0) as u16,
            sysno::LOG_VALUE => {
                self.log.push(LogEntry {
                    app_index,
                    value: args.arg0 as i16,
                    at_cycle,
                });
            }
            sysno::SET_TIMER => out.timer_armed_ms = Some(args.arg0),
            sysno::GET_BATTERY => out.ret = self.sensors.battery(),
            sysno::GET_HEART_RATE => out.ret = self.sensors.heart_rate(),
            sysno::GET_ACCEL => out.ret = self.sensors.accel(args.arg0) as u16,
            sysno::GET_TEMPERATURE => out.ret = self.sensors.temperature() as u16,
            sysno::DISPLAY_VALUE => self.display.push((app_index, args.arg0 as i16)),
            sysno::LOG_BUFFER => {
                // Copy up to arg1 words from the (already validated) app
                // buffer into the log; the copy itself costs extra cycles.
                let words = (args.arg1 as u64).min(64);
                let mut sum = 0i32;
                for i in 0..words {
                    sum += read_word(args.arg0 as Addr + (i as Addr) * 2) as i16 as i32;
                }
                self.log.push(LogEntry {
                    app_index,
                    value: (sum.clamp(i16::MIN as i32, i16::MAX as i32)) as i16,
                    at_cycle,
                });
                out.service_cycles += 4 * words;
                out.ret = words as u16;
            }
            sysno::GET_LIGHT => out.ret = self.sensors.light(),
            sysno::SUBSCRIBE => out.subscribed_stream = Some(args.arg0),
            _ => {
                // Unknown numbers cannot be produced by AFT-compiled code
                // (the compiler rejects unapproved calls); treat a stray one
                // as a no-op returning zero.
                out.service_cycles = 4;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_mem() -> impl FnMut(Addr) -> u16 {
        |_| 0
    }

    #[test]
    fn logging_and_display_record_per_app() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(1);
        s.dispatch(
            &api,
            0,
            sysno::LOG_VALUE,
            SyscallArgs { arg0: 42, arg1: 0 },
            10,
            &mut no_mem(),
        );
        s.dispatch(
            &api,
            1,
            sysno::DISPLAY_VALUE,
            SyscallArgs { arg0: 7, arg1: 0 },
            20,
            &mut no_mem(),
        );
        assert_eq!(s.log.len(), 1);
        assert_eq!(s.log[0].app_index, 0);
        assert_eq!(s.log[0].value, 42);
        assert_eq!(s.display, vec![(1, 7)]);
    }

    #[test]
    fn timers_and_subscriptions_are_reported_to_the_scheduler() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(1);
        let out = s.dispatch(
            &api,
            0,
            sysno::SET_TIMER,
            SyscallArgs { arg0: 500, arg1: 0 },
            0,
            &mut no_mem(),
        );
        assert_eq!(out.timer_armed_ms, Some(500));
        let out = s.dispatch(
            &api,
            0,
            sysno::SUBSCRIBE,
            SyscallArgs { arg0: 3, arg1: 0 },
            0,
            &mut no_mem(),
        );
        assert_eq!(out.subscribed_stream, Some(3));
    }

    #[test]
    fn buffer_log_reads_app_memory_through_the_callback() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(1);
        let mem = [5u16, 6, 7, 8];
        let mut read = |addr: Addr| mem[((addr - 0x8000) / 2) as usize];
        let out = s.dispatch(
            &api,
            0,
            sysno::LOG_BUFFER,
            SyscallArgs {
                arg0: 0x8000,
                arg1: 4,
            },
            0,
            &mut read,
        );
        assert_eq!(out.ret, 4);
        assert_eq!(s.log[0].value, 26);
        assert_eq!(out.pointer_args, 1);
        assert!(out.service_cycles > api.by_num(sysno::LOG_BUFFER).unwrap().service_cycles);
    }

    #[test]
    fn sensor_calls_return_plausible_values_and_count_dispatches() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(9);
        let hr = s
            .dispatch(
                &api,
                0,
                sysno::GET_HEART_RATE,
                SyscallArgs::default(),
                0,
                &mut no_mem(),
            )
            .ret;
        assert!((40..=180).contains(&hr));
        let batt = s
            .dispatch(
                &api,
                0,
                sysno::GET_BATTERY,
                SyscallArgs::default(),
                0,
                &mut no_mem(),
            )
            .ret;
        assert!(batt <= 100);
        assert_eq!(s.dispatch_counts.get(sysno::GET_HEART_RATE), 1);
        assert_eq!(s.dispatch_counts.get(sysno::GET_BATTERY), 1);
    }

    #[test]
    fn yield_sets_the_batching_hint() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(1);
        let out = s.dispatch(
            &api,
            0,
            sysno::YIELD,
            SyscallArgs::default(),
            0,
            &mut no_mem(),
        );
        assert!(out.yielded);
        let out = s.dispatch(
            &api,
            0,
            sysno::GET_TIME,
            SyscallArgs::default(),
            0,
            &mut no_mem(),
        );
        assert!(!out.yielded);
    }

    #[test]
    fn unknown_syscall_is_a_cheap_no_op() {
        let api = ApiSpec::amulet();
        let mut s = Services::new(1);
        let out = s.dispatch(&api, 0, 999, SyscallArgs::default(), 0, &mut no_mem());
        assert_eq!(out.ret, 0);
        assert!(out.service_cycles <= 8);
    }
}
