//! Property test for batched event delivery: for arbitrary event
//! sequences, batch parameters, isolation methods and restart policies,
//! [`DeliveryPolicy::Batched`] never changes app-visible event order or
//! fault behaviour compared to [`DeliveryPolicy::PerEvent`] — only the
//! switch accounting.
//!
//! The test apps deliberately cover the delivery edge cases: an app that
//! logs (syscalls mid-handler), an app that faults on demand (kill and
//! restart paths mid-batch), an app that yields (ends batches early), and
//! events targeting missing handlers (skips mid-batch).  None of them
//! re-arm timers: timer coalescing intentionally interacts with delivery
//! *timing*, which is the one thing batching is allowed to trade.

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::method::IsolationMethod;
use amulet_os::events::{DeliveryPolicy, Event, EventKind};
use amulet_os::os::{AmuletOs, OsOptions};
use amulet_os::policy::RestartPolicy;
use proptest::collection::vec;
use proptest::prelude::*;

const COUNTER: &str = r#"
    int n = 0;
    void main(void) { }
    int tick(int d) {
        n += d;
        amulet_log_value(n);
        return n;
    }
"#;

/// Faults (a wild write into OS memory) when the payload is large.
const CRASHY: &str = r#"
    int c = 0;
    void main(void) { }
    int go(int x) {
        int *p;
        if (x > 900) {
            p = 0x4400;
            *p = 1;
        }
        c = c + 1;
        amulet_log_value(c);
        return c;
    }
"#;

const YIELDY: &str = r#"
    void main(void) { }
    int y(int d) {
        amulet_yield();
        amulet_log_value(d);
        return d;
    }
"#;

fn build(method: IsolationMethod, policy: DeliveryPolicy, restart: RestartPolicy) -> AmuletOs {
    let out = Aft::new(method)
        .add_app(AppSource::new("Counter", COUNTER, &["main", "tick"]))
        .add_app(AppSource::new("Crashy", CRASHY, &["main", "go"]))
        .add_app(AppSource::new("Yieldy", YIELDY, &["main", "y"]))
        .build()
        .unwrap_or_else(|e| panic!("{method}: {e}"));
    AmuletOs::with_options(
        out.firmware,
        OsOptions {
            delivery: policy,
            restart_policy: restart,
            ..OsOptions::default()
        },
    )
}

fn handler_for(app: usize, choice: usize) -> &'static str {
    match (app, choice) {
        (0, 2) | (1, 2) | (2, 2) => "nope", // missing → Skipped
        (0, _) => "tick",
        (1, _) => "go",
        _ => "y",
    }
}

/// `(app, logged value)` entries and `(app, fault class/action)` records.
type Behaviour = (Vec<(usize, i16)>, Vec<(usize, String)>);

/// Everything an application can observe or cause, in order.
fn visible_behaviour(os: &AmuletOs) -> Behaviour {
    let log = os
        .services
        .log
        .iter()
        .map(|l| (l.app_index, l.value))
        .collect();
    let faults = os
        .faults
        .records
        .iter()
        .map(|r| (r.app_index, format!("{:?}/{:?}", r.class, r.action)))
        .collect();
    (log, faults)
}

fn method_strategy() -> impl Strategy<Value = IsolationMethod> {
    prop_oneof![
        Just(IsolationMethod::Mpu),
        Just(IsolationMethod::SoftwareOnly),
        Just(IsolationMethod::NoIsolation),
    ]
}

fn restart_strategy() -> impl Strategy<Value = RestartPolicy> {
    prop_oneof![
        Just(RestartPolicy::Kill),
        Just(RestartPolicy::Restart),
        Just(RestartPolicy::RestartWithLimit { max_restarts: 1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batching_changes_only_the_switch_accounting(
        method in method_strategy(),
        restart in restart_strategy(),
        max_batch in 1usize..6,
        max_latency in 1usize..10,
        events in vec((0usize..3, 0usize..3, 0u16..1000), 1..40),
    ) {
        let drive = |policy: DeliveryPolicy| {
            let mut os = build(method, policy, restart);
            os.boot();
            for (app, choice, payload) in &events {
                os.post_event(Event::new(
                    *app,
                    handler_for(*app, *choice),
                    *payload,
                    EventKind::User,
                ));
                os.pump();
            }
            os.flush();
            os
        };
        let per_event = drive(DeliveryPolicy::PerEvent);
        let batched = drive(DeliveryPolicy::Batched {
            max_batch,
            max_latency_events: max_latency,
        });

        // App-visible behaviour is identical: every log entry in the same
        // order, every fault with the same class and policy action, every
        // app in the same final lifecycle state.
        prop_assert_eq!(visible_behaviour(&per_event), visible_behaviour(&batched));
        for idx in 0..per_event.app_count() {
            prop_assert_eq!(per_event.app_state(idx), batched.app_state(idx));
            let a = &per_event.stats[idx];
            let b = &batched.stats[idx];
            prop_assert_eq!(a.events_delivered, b.events_delivered, "app {}", idx);
            prop_assert_eq!(a.syscalls, b.syscalls, "app {}", idx);
            prop_assert_eq!(a.faults, b.faults, "app {}", idx);
            prop_assert_eq!(a.app_cycles, b.app_cycles, "app {}", idx);
            prop_assert_eq!(a.service_cycles, b.service_cycles, "app {}", idx);
            // Only switch accounting may differ, and only downward.
            prop_assert!(b.switch_cycles <= a.switch_cycles, "app {}", idx);
            prop_assert_eq!(a.batch_boundaries, 0u64);
            // Every elided boundary replaced exactly one full round trip.
            prop_assert_eq!(
                a.full_switches,
                b.full_switches + 2 * b.batch_boundaries,
                "app {}",
                idx
            );
        }
        prop_assert!(batched.total_cycles() <= per_event.total_cycles());
    }
}
