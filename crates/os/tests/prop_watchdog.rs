//! Property tests for the watchdog restart-with-backoff policy: the
//! backoff schedule is a pure, exponentially-floored function of its
//! seed, and quarantine is irreversible — a quarantined app never
//! executes again within a run, no matter how many deliveries follow.

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::method::IsolationMethod;
use amulet_os::os::{AmuletOs, DeliveryOutcome, OsOptions};
use amulet_os::policy::{backoff_delay, AppState, RestartPolicy};
use proptest::prelude::*;

/// Faults on every delivery: a wild write into OS memory that the MPU
/// refuses, so each executed handler is exactly one strike.
const FAULTY: &str = r#"
    void main(void) { }
    int go(int x) {
        int *p;
        p = 0x4400;
        *p = 1;
        return 0;
    }
"#;

fn watchdog_os(base_backoff: u32, max_strikes: u32, jitter_seed: u64) -> AmuletOs {
    let out = Aft::new(IsolationMethod::Mpu)
        .add_app(AppSource::new("Faulty", FAULTY, &["main", "go"]))
        .build()
        .expect("faulty app builds");
    AmuletOs::with_options(
        out.firmware,
        OsOptions {
            restart_policy: RestartPolicy::RestartWithBackoff {
                base_backoff,
                max_strikes,
                jitter_seed,
            },
            ..OsOptions::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The backoff schedule is deterministic, at least doubles per strike
    /// from the base, and jitters by strictly less than one base.
    #[test]
    fn backoff_schedule_is_a_pure_exponentially_floored_function(
        base in 1u32..64,
        seed in any::<u64>(),
        app in 0usize..16,
        strike in 1u32..12,
    ) {
        let d = backoff_delay(base, seed, app, strike);
        prop_assert_eq!(d, backoff_delay(base, seed, app, strike));
        let floor = base << (strike - 1).min(16);
        prop_assert!(d >= floor, "delay {} under floor {}", d, floor);
        prop_assert!(d < floor + base, "jitter must stay under one base");
    }

    /// Different seeds produce different schedules somewhere: the jitter
    /// really is seeded, not constant.
    #[test]
    fn backoff_schedules_are_seed_sensitive(
        base in 2u32..64,
        seed in any::<u64>(),
    ) {
        let a: Vec<u32> = (1..10).map(|s| backoff_delay(base, seed, 0, s)).collect();
        let b: Vec<u32> = (1..10)
            .map(|s| backoff_delay(base, seed ^ 0x5EED, 0, s))
            .collect();
        // Nine strikes of jitter in [0, base) with base ≥ 2: identical
        // sequences under two decorrelated seeds would defeat the
        // SplitMix64 finaliser entirely.
        prop_assert_ne!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Driving an always-faulting app under the watchdog policy reaches
    /// quarantine within the backoff budget, records exactly
    /// `max_strikes` faults — and afterwards the app *never executes
    /// again*: every further delivery is skipped and the fault log stops
    /// growing.
    #[test]
    fn quarantined_apps_never_execute_again(
        base in 1u32..6,
        max_strikes in 1u32..5,
        seed in any::<u64>(),
        extra in 5usize..30,
    ) {
        let mut os = watchdog_os(base, max_strikes, seed);
        os.boot();
        prop_assert_eq!(os.app_state(0), AppState::Active);

        // Worst case: every strike schedules floor + jitter < 2·(base<<s)
        // skipped deliveries before the next executed one.
        let bound = 64 + 2 * (max_strikes as usize) * ((base as usize) << max_strikes);
        let mut deliveries = 0usize;
        while os.app_state(0) != AppState::Quarantined {
            os.call_handler(0, "go", 1);
            deliveries += 1;
            prop_assert!(
                deliveries <= bound,
                "quarantine must arrive within the backoff budget"
            );
        }
        prop_assert_eq!(os.faults.faults_for(0), max_strikes);
        let recorded = os.faults.records.len();

        for _ in 0..extra {
            let (outcome, _) = os.call_handler(0, "go", 1);
            prop_assert_eq!(outcome, DeliveryOutcome::Skipped);
        }
        prop_assert_eq!(os.app_state(0), AppState::Quarantined);
        prop_assert_eq!(os.faults.records.len(), recorded, "the fault log froze");
        prop_assert_eq!(os.faults.faults_for(0), max_strikes);
    }
}
