//! CFG recovery and abstract interpretation over a linked image.
//!
//! The verifier works per application, on the final [`Firmware`]: entry
//! points are the app's OS-registered handlers (plus every function
//! symbol once an indirect call is seen, since a code-bounded function
//! pointer could reach any of them).  A worklist walk computes, for
//! every reachable instruction, a sound join of the abstract states on
//! all paths into it.  The fixed point then answers three questions:
//!
//! 1. **structure** — odd or out-of-image branch targets, indirect
//!    flows and dead code become typed [`Finding`]s;
//! 2. **containment** — every reachable memory-touching instruction is
//!    classified against the method's policed address set as
//!    proven-safe, proven-escape or unknown;
//! 3. **redundancy** — a compiler-inserted bound check whose compared
//!    register provably lies on the passing side of the
//!    (linker-patched) bound immediate can never branch, so the
//!    elision pass may drop it.
//!
//! # The abstract domain
//!
//! A state is an [`Interval`] per register plus a small *abstract
//! memory*: intervals for individual 16-bit words at statically-known
//! addresses.  Tracking memory is what makes the analysis useful on
//! real compiler output — the stack-machine code generator spills
//! every local to a frame slot and threads operands through
//! `push`/`pop`, so a register-only domain sees `⊤` almost everywhere.
//! Two facts make the memory tractable:
//!
//! * the OS resets the stack pointer to a fixed, statically-known
//!   address on **every** handler dispatch, so handler-entry `SP` is a
//!   singleton and frame slots get concrete absolute addresses;
//! * a syscall's only app-visible effects are the return value in
//!   `R14` and peripheral-space writes (the services run on the host
//!   and only *read* app memory), so the tracked frame survives the
//!   syscalls that pepper real handlers.
//!
//! On top of the intervals the state keeps *equality tags*: a register
//! (or word) may be tagged as holding exactly the current value of
//! some tracked word.  Loads establish tags, any potentially-aliasing
//! write kills them, and conditional-branch refinement applies to
//! every holder of the tag — which is how a bound learned on a scratch
//! register propagates back to the loop counter's stack slot.

use crate::interval::Interval;
use crate::report::{AccessClass, AccessVerdict, AppVerification, Finding, VerifyReport};
use amulet_core::addr::AddrRange;
use amulet_core::checks::CheckSite;
use amulet_core::mpu_plan::MpuPlan;
use amulet_core::perm::Perm;
use amulet_mcu::firmware::{AppBinary, Firmware};
use amulet_mcu::isa::{AluOp, Cond, Instr, Reg, UnaryOp, Width};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Joins per program point after which still-changing registers and
/// memory words are widened straight to `⊤` (registers) or dropped
/// (words).  The limit comfortably exceeds the small constant trip
/// counts of the catalogue's counted loops, which therefore converge
/// *before* widening and keep their counters bounded — while unbounded
/// loops are cut off without losing straight-line precision.
const WIDEN_AFTER: u32 = 24;

/// The abstract machine state at one program point.
#[derive(Clone, PartialEq, Eq, Debug)]
struct State {
    /// Value interval per register.
    regs: [Interval; Reg::COUNT],
    /// `reg_tag[r] = Some(a)`: register `r` holds exactly the current
    /// value of the word at address `a`.
    reg_tag: [Option<u16>; Reg::COUNT],
    /// Interval per tracked 16-bit word, keyed by absolute address.
    /// An absent key means `⊤`.
    mem: BTreeMap<u16, Interval>,
    /// `mem_tag[k] = a`: the word at `k` holds exactly the current
    /// value of the word at `a` (a spilled copy).
    mem_tag: BTreeMap<u16, u16>,
    /// `Some((register index, immediate))` after a compare against a
    /// statically-known value, while the compared register and the
    /// flags are both still live.
    cmp: Option<(u8, u16)>,
}

impl State {
    fn top() -> Self {
        State {
            regs: [Interval::TOP; Reg::COUNT],
            reg_tag: [None; Reg::COUNT],
            mem: BTreeMap::new(),
            mem_tag: BTreeMap::new(),
            cmp: None,
        }
    }

    fn get(&self, r: Reg) -> Interval {
        self.regs[r.index()]
    }

    /// Writes a register, replacing its tag and killing any live
    /// compare on it.
    fn set(&mut self, r: Reg, v: Interval, tag: Option<u16>) {
        self.regs[r.index()] = v;
        self.reg_tag[r.index()] = tag;
        if self.cmp.is_some_and(|(cr, _)| usize::from(cr) == r.index()) {
            self.cmp = None;
        }
    }

    /// Kills all knowledge about bytes `[lo, hi]` of memory: tracked
    /// words overlapping the span, and every tag pointing at them.
    fn havoc_bytes(&mut self, lo: u32, hi: u32) {
        // A word at `a` covers bytes `[a, a + 1]`, so it overlaps the
        // span iff `a` lies in `[lo - 1, hi]`.
        let slot_lo = lo.saturating_sub(1);
        let overlaps = |a: u16| (slot_lo..=hi).contains(&u32::from(a));
        self.mem.retain(|&a, _| !overlaps(a));
        self.mem_tag
            .retain(|&k, &mut a| !overlaps(k) && !overlaps(a));
        for t in self.reg_tag.iter_mut() {
            if t.is_some_and(overlaps) {
                *t = None;
            }
        }
    }

    /// Kills all knowledge about memory.
    fn havoc_all_mem(&mut self) {
        self.mem.clear();
        self.mem_tag.clear();
        self.reg_tag = [None; Reg::COUNT];
    }

    /// Abstract store of `value` (carrying equality tag `tag`) to the
    /// byte span the access can touch.
    fn store(&mut self, target: Interval, width: Width, value: Interval, tag: Option<u16>) {
        if target.is_top() {
            self.havoc_all_mem();
            return;
        }
        self.havoc_bytes(
            u32::from(target.lo),
            u32::from(target.hi) + width.bytes() - 1,
        );
        if target.is_singleton() && width == Width::Word {
            let a = target.lo;
            if !value.is_top() {
                self.mem.insert(a, value);
            }
            if let Some(t) = tag {
                if t != a {
                    self.mem_tag.insert(a, t);
                }
            }
        }
    }

    /// Abstract load from `target`: the value interval and the
    /// equality tag the destination inherits.
    fn load(&self, target: Interval, width: Width) -> (Interval, Option<u16>) {
        if target.is_singleton() && width == Width::Word {
            let a = target.lo;
            let v = self.mem.get(&a).copied().unwrap_or(Interval::TOP);
            // Tag chains collapse at store time, so one hop suffices.
            let tag = self.mem_tag.get(&a).copied().unwrap_or(a);
            (v, Some(tag))
        } else {
            (Interval::TOP, None)
        }
    }

    /// The interval of the word every holder of tag `t` equals.
    fn tag_value(&self, t: u16) -> Interval {
        self.mem.get(&t).copied().unwrap_or(Interval::TOP)
    }

    /// Joins `other` into `self`; returns whether anything changed.
    /// After `WIDEN_AFTER` joins at the same point, changing cells are
    /// widened instead of growing step by step.
    fn join_from(&mut self, other: &State, visits: u32) -> bool {
        let widen = visits > WIDEN_AFTER;
        let mut changed = false;
        for i in 0..Reg::COUNT {
            let joined = self.regs[i].join(&other.regs[i]);
            if joined != self.regs[i] {
                self.regs[i] = if widen { Interval::TOP } else { joined };
                changed = true;
            }
            if self.reg_tag[i] != other.reg_tag[i] && self.reg_tag[i].is_some() {
                self.reg_tag[i] = None;
                changed = true;
            }
        }
        let mut dropped: Vec<u16> = Vec::new();
        for (&a, v) in self.mem.iter_mut() {
            match other.mem.get(&a) {
                Some(ov) => {
                    let joined = v.join(ov);
                    if joined != *v {
                        if widen {
                            dropped.push(a);
                        } else {
                            *v = joined;
                        }
                        changed = true;
                    }
                }
                None => {
                    dropped.push(a);
                    changed = true;
                }
            }
        }
        for a in dropped {
            self.mem.remove(&a);
        }
        let before = self.mem_tag.len();
        let other_tags = &other.mem_tag;
        self.mem_tag.retain(|k, a| other_tags.get(k) == Some(a));
        changed |= self.mem_tag.len() != before;
        if self.cmp != other.cmp && self.cmp.is_some() {
            self.cmp = None;
            changed = true;
        }
        changed
    }

    /// Applies refinement `f` to the compared register and — through
    /// the equality tags — to every other holder of the same runtime
    /// value.  Returns `None` when the refinement proves the edge
    /// infeasible.
    fn refine(&self, reg: Reg, f: impl Fn(&Interval) -> Option<Interval>) -> Option<State> {
        let mut s = self.clone();
        s.regs[reg.index()] = f(&self.get(reg))?;
        if let Some(t) = self.reg_tag[reg.index()] {
            // Every holder of tag `t` equals the runtime value the
            // branch just constrained, so the predicate applies to
            // each — and an infeasible result anywhere kills the edge.
            let refined = f(&self.tag_value(t))?;
            if refined.is_top() {
                s.mem.remove(&t);
            } else {
                s.mem.insert(t, refined);
            }
            for i in 0..Reg::COUNT {
                if i != reg.index() && self.reg_tag[i] == Some(t) {
                    s.regs[i] = f(&self.regs[i])?;
                }
            }
            for (&k, &kt) in &self.mem_tag {
                if kt == t {
                    let rv = f(&self.tag_value(k))?;
                    if rv.is_top() {
                        s.mem.remove(&k);
                    } else {
                        s.mem.insert(k, rv);
                    }
                }
            }
        }
        Some(s)
    }
}

/// The per-app address sets the isolation method polices, precomputed
/// as coalesced `[start, end)` ranges for interval classification.
struct AccessPolicy {
    readable: Vec<(u32, u32)>,
    writable: Vec<(u32, u32)>,
}

impl AccessPolicy {
    /// Builds the policy for one app: the planned MPU segments that
    /// grant the needed permission, plus — for methods that run apps
    /// on the shared OS stack — the OS stack region itself.
    ///
    /// The plan's `permission_at` is first-match-wins over segments,
    /// but every built-in plan's segments are non-overlapping, so
    /// collecting the granting segments directly is exact.
    fn for_app(firmware: &Firmware, app: &AppBinary) -> Self {
        let plan = MpuPlan::for_app_on(&firmware.memory_map, app.index)
            .expect("linked firmware always carries a plannable memory map");
        let mut readable = Vec::new();
        let mut writable = Vec::new();
        for seg in &plan.segments {
            if seg.perm.allows(Perm::R) {
                readable.push((seg.range.start, seg.range.end));
            }
            if seg.perm.allows(Perm::W) {
                writable.push((seg.range.start, seg.range.end));
            }
        }
        if !firmware.method.uses_per_app_stacks() {
            // Apps run (and push return addresses) on the shared OS
            // stack under these methods, so stack traffic there is not
            // an escape.
            let os_stack = firmware.memory_map.os_stack;
            readable.push((os_stack.start, os_stack.end));
            writable.push((os_stack.start, os_stack.end));
        }
        AccessPolicy {
            readable: coalesce(readable),
            writable: coalesce(writable),
        }
    }

    /// Classifies an access whose base address lies in `target` and
    /// touches `size` bytes: entirely inside the allowed set ⇒
    /// proven-safe, entirely outside ⇒ proven-escape, else unknown.
    fn classify(&self, target: Interval, write: bool, size: u32) -> AccessVerdict {
        let ranges = if write {
            &self.writable
        } else {
            &self.readable
        };
        // Bytes any possible access can touch.
        let lo = u32::from(target.lo);
        let hi = u32::from(target.hi) + size - 1;
        if ranges.iter().any(|&(s, e)| s <= lo && hi < e) {
            AccessVerdict::ProvenSafe
        } else if ranges.iter().all(|&(s, e)| e <= lo || hi < s) {
            AccessVerdict::ProvenEscape
        } else {
            AccessVerdict::Unknown
        }
    }
}

/// Sorts and merges overlapping or adjacent `[start, end)` ranges, so
/// a span covered by the union is covered by a single merged range.
fn coalesce(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for (s, e) in ranges {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// The fixed point of one app's walk: joined in-states per reachable
/// instruction address, plus the structural findings gathered on the
/// way.
struct Fixpoint {
    states: BTreeMap<u32, State>,
    findings: Vec<Finding>,
    entry_points: usize,
}

/// Verifies every app of a linked firmware image.  Check-site metadata
/// (from the build report) may be supplied per app name to also decide
/// which compiler-inserted checks are provably redundant.
pub fn verify_firmware_with_sites(
    firmware: &Firmware,
    sites: &BTreeMap<String, Vec<CheckSite>>,
) -> VerifyReport {
    let mut apps = Vec::with_capacity(firmware.apps.len());
    for app in &firmware.apps {
        let empty = Vec::new();
        let app_sites = sites.get(&app.name).unwrap_or(&empty);
        apps.push(verify_app(firmware, app, app_sites));
    }
    VerifyReport {
        platform: firmware.memory_map.platform.name.clone(),
        method: firmware.method,
        apps,
    }
}

/// Verifies a bare firmware image (no check-site metadata, so the
/// report's `elidable_sites` stay empty).
pub fn verify_firmware(firmware: &Firmware) -> VerifyReport {
    verify_firmware_with_sites(firmware, &BTreeMap::new())
}

/// Verifies a build output, using the report's check-site metadata so
/// provably-redundant checks are identified as well.
pub fn verify_build(out: &amulet_aft::aft::BuildOutput) -> VerifyReport {
    let sites: BTreeMap<String, Vec<CheckSite>> = out
        .report
        .apps
        .iter()
        .map(|a| (a.name.clone(), a.check_sites.clone()))
        .collect();
    verify_firmware_with_sites(&out.firmware, &sites)
}

fn verify_app(firmware: &Firmware, app: &AppBinary, sites: &[CheckSite]) -> AppVerification {
    let fixpoint = walk(firmware, app);

    // Dead code: instructions inside the app's code region never reached.
    let mut findings = fixpoint.findings;
    let mut dead_instrs = 0usize;
    let mut run_start: Option<(u32, u32)> = None;
    for (addr, _) in firmware
        .code
        .range(app.placement.code.start..app.placement.code.end)
    {
        if fixpoint.states.contains_key(&addr) {
            if let Some((start, n)) = run_start.take() {
                findings.push(Finding::DeadCode {
                    addr: start,
                    instrs: n,
                });
            }
        } else {
            dead_instrs += 1;
            run_start = Some(match run_start {
                Some((start, n)) => (start, n + 1),
                None => (addr, 1),
            });
        }
    }
    if let Some((start, n)) = run_start {
        findings.push(Finding::DeadCode {
            addr: start,
            instrs: n,
        });
    }
    findings.sort_by_key(finding_order);

    // Containment: classify every reachable memory access against the
    // method's policed address set.
    let policy = AccessPolicy::for_app(firmware, app);
    let mut accesses = Vec::new();
    for (&addr, state) in &fixpoint.states {
        let Some(&instr) = firmware.code.get(addr) else {
            continue;
        };
        if !instr.touches_data_memory() {
            continue;
        }
        let Some((target, write, size)) = access_target(&instr, state) else {
            continue;
        };
        accesses.push(AccessClass {
            at: addr,
            instr: instr.to_string(),
            write,
            lo: target.lo,
            hi: target.hi,
            verdict: policy.classify(target, write, size),
        });
    }

    // Redundancy: a bound check whose pair provably falls through.
    let mut elidable_sites = Vec::new();
    let mut elidable_candidates = 0usize;
    for site in sites {
        if !site.kind.is_elidable() {
            continue;
        }
        elidable_candidates += 1;
        if site_is_redundant(firmware, site, &fixpoint.states) {
            elidable_sites.push(*site);
        }
    }

    AppVerification {
        app: app.name.clone(),
        entry_points: fixpoint.entry_points,
        reachable_instrs: fixpoint.states.len(),
        dead_instrs,
        findings,
        accesses,
        elidable_sites,
        elidable_candidates,
    }
}

fn finding_order(f: &Finding) -> (u32, u32) {
    match f {
        Finding::OddTarget { at, .. } => (*at, 0),
        Finding::OutOfImage { at, .. } => (*at, 1),
        Finding::IndirectFlow { at, .. } => (*at, 2),
        Finding::DeadCode { addr, .. } => (*addr, 3),
    }
}

/// The abstract target interval of a memory-touching instruction, with
/// its direction and byte size, given the in-state.  `None` only for
/// non-memory instructions.
fn access_target(instr: &Instr, state: &State) -> Option<(Interval, bool, u32)> {
    match *instr {
        Instr::Load {
            base,
            offset,
            width,
            ..
        } => Some((
            state.get(base).add_signed(i32::from(offset)),
            false,
            width.bytes(),
        )),
        Instr::Store {
            base,
            offset,
            width,
            ..
        } => Some((
            state.get(base).add_signed(i32::from(offset)),
            true,
            width.bytes(),
        )),
        Instr::LoadAbs { addr, width, .. } => {
            Some((Interval::singleton(addr), false, width.bytes()))
        }
        Instr::StoreAbs { addr, width, .. } => {
            Some((Interval::singleton(addr), true, width.bytes()))
        }
        Instr::Push { .. } => Some((state.get(Reg::SP).add_signed(-2), true, 2)),
        Instr::Pop { .. } => Some((state.get(Reg::SP), false, 2)),
        _ => None,
    }
}

/// Whether a (linker-patched) bound-check pair provably falls through:
/// the site must be reachable, keep its `CmpImm` + unsigned-`Jcc`
/// shape, and the compared register's interval must lie entirely on
/// the passing side of the patched bound.
fn site_is_redundant(firmware: &Firmware, site: &CheckSite, states: &BTreeMap<u32, State>) -> bool {
    let Some(state) = states.get(&site.addr) else {
        return false; // unreachable sites are dead code, not elision wins
    };
    let Some(&Instr::CmpImm { a, imm }) = firmware.code.get(site.addr) else {
        return false;
    };
    let Some(&Instr::Jcc { cond, .. }) = firmware.code.get(site.addr + 4) else {
        return false;
    };
    let v = state.get(a);
    match cond {
        Cond::Lo => v.lo >= imm,           // `a < bound` never holds
        Cond::Hs => imm > 0 && v.hi < imm, // `a >= bound` never holds
        _ => false,
    }
}

/// The register tested by a boolean guard at `addr`, if any.
///
/// The code generator materialises every comparison as a 0/1 value and
/// re-tests it (`cmp a, b; mov #1, d; jcc L; mov #0, d; L: cmp #0, d;
/// jeq exit`).  A plain join at `L` would merge the two arms and lose
/// the correlation between `d` and the refinement the original branch
/// established (the loop counter's bound, typically).  Nodes belonging
/// to such a guard — the `cmp #0` and its `jeq`/`jne` — therefore keep
/// their in-states *partitioned* by the guard register being exactly 0,
/// exactly 1, or anything else, so each arm's refinement survives to
/// the re-test, where the infeasible-edge logic routes it correctly.
fn guard_reg(code: &amulet_mcu::code::InstrStore, addr: u32) -> Option<u8> {
    match code.get(addr) {
        Some(&Instr::CmpImm { a, imm: 0 })
            if matches!(
                code.get(addr + 4),
                Some(Instr::Jcc {
                    cond: Cond::Eq | Cond::Ne,
                    ..
                })
            ) =>
        {
            Some(a.0)
        }
        Some(&Instr::Jcc {
            cond: Cond::Eq | Cond::Ne,
            ..
        }) => match addr.checked_sub(4).and_then(|p| code.get(p)) {
            Some(&Instr::CmpImm { a, imm: 0 }) => Some(a.0),
            _ => None,
        },
        _ => None,
    }
}

/// The partition slot an in-state lands in at a node (see [`guard_reg`]).
/// Partitioning is sound for *any* predicate of the state: each slot
/// over-approximates a subset of the paths, and the final per-node join
/// covers them all — the split only adds precision across the guard.
fn partition(guard: Option<u8>, s: &State) -> usize {
    match guard {
        Some(r) => {
            let v = s.regs[usize::from(r)];
            if v == Interval::singleton(0) {
                0
            } else if v == Interval::singleton(1) {
                1
            } else {
                2
            }
        }
        None => 2,
    }
}

/// Runs the worklist walk for one app and returns its fixed point.
fn walk(firmware: &Firmware, app: &AppBinary) -> Fixpoint {
    let code_region = &app.placement.code;
    let code = &firmware.code;
    let peripherals = firmware.memory_map.platform.peripherals;

    // The stack the OS dispatches this app's handlers on: per-app under
    // the methods that switch stacks, the shared OS stack otherwise.
    // Dispatch writes the payload word at `sp0 - 2`, pushes the sentinel
    // return address, and enters the handler with `SP = sp0 - 4` — a
    // statically-known singleton, which is what gives frame slots
    // concrete absolute addresses.
    let sp0 = if firmware.method.uses_per_app_stacks() {
        app.initial_sp
    } else {
        firmware.os.initial_sp
    };
    let mut handler_entry = State::top();
    handler_entry.set(
        Reg::SP,
        Interval::singleton((sp0 as u16).wrapping_sub(4)),
        None,
    );

    // Roots: the OS-invocable handlers, entered with the dispatch state.
    let handler_roots: BTreeSet<u32> = app.handlers.values().copied().collect();

    // An indirect call can target any function whose address the app can
    // materialise — over-approximate with every function symbol.  Entry
    // state is unknown (the call site's stack depth is arbitrary).
    let uses_indirect_calls = code
        .range(code_region.start..code_region.end)
        .any(|(_, i)| matches!(i, Instr::CallReg { .. } | Instr::Br { .. }));
    let mut symbol_roots: BTreeSet<u32> = BTreeSet::new();
    if uses_indirect_calls {
        let prefix = format!("{}::", app.name);
        symbol_roots.extend(
            firmware
                .symbols
                .iter()
                .filter(|(name, _)| name.starts_with(&prefix))
                .map(|(_, &addr)| addr),
        );
    }

    // In-states per node, partitioned by the node's boolean guard (if
    // any) — slot 0: guard register exactly 0, slot 1: exactly 1,
    // slot 2: everything else (and all unguarded nodes).
    let mut states: BTreeMap<u32, [Option<State>; 3]> = BTreeMap::new();
    let mut visits: BTreeMap<(u32, usize), u32> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut queue: VecDeque<(u32, usize)> = VecDeque::new();

    // Pushes `state` into `target`'s partitioned in-state, queueing the
    // slot when the join changed something (or the slot is new).
    let flow = |target: u32,
                state: State,
                states: &mut BTreeMap<u32, [Option<State>; 3]>,
                visits: &mut BTreeMap<(u32, usize), u32>,
                queue: &mut VecDeque<(u32, usize)>| {
        let slot = partition(guard_reg(code, target), &state);
        let slots = states.entry(target).or_default();
        match &mut slots[slot] {
            empty @ None => {
                *empty = Some(state);
                queue.push_back((target, slot));
            }
            Some(existing) => {
                let v = visits.entry((target, slot)).or_insert(0);
                *v += 1;
                if existing.join_from(&state, *v) {
                    queue.push_back((target, slot));
                }
            }
        }
    };

    for &root in &symbol_roots {
        flow(root, State::top(), &mut states, &mut visits, &mut queue);
    }
    for &root in &handler_roots {
        flow(
            root,
            handler_entry.clone(),
            &mut states,
            &mut visits,
            &mut queue,
        );
    }
    let entry_points = states.len();

    // Validates a control-transfer target, recording a finding and
    // refusing the edge when it cannot be followed.
    let check_target = |at: u32, target: u32, findings: &mut Vec<Finding>| -> bool {
        if !target.is_multiple_of(2) {
            findings.push(Finding::OddTarget { at, target });
            return false;
        }
        if !code_region.contains(target) || !code.contains(target) {
            findings.push(Finding::OutOfImage { at, target });
            return false;
        }
        true
    };

    while let Some((addr, slot)) = queue.pop_front() {
        let Some(state) = states.get(&addr).and_then(|s| s[slot].clone()) else {
            continue;
        };
        let Some(&instr) = code.get(addr) else {
            continue;
        };
        let next = addr + instr.size_bytes();

        match instr {
            Instr::Jmp { target } => {
                if check_target(addr, u32::from(target), &mut findings) {
                    flow(
                        u32::from(target),
                        state,
                        &mut states,
                        &mut visits,
                        &mut queue,
                    );
                }
            }
            Instr::Jcc { cond, target } => {
                let (taken, fall) = split_on_branch(&state, cond);
                if let Some(taken) = taken {
                    if check_target(addr, u32::from(target), &mut findings) {
                        flow(
                            u32::from(target),
                            taken,
                            &mut states,
                            &mut visits,
                            &mut queue,
                        );
                    }
                }
                if let Some(fall) = fall {
                    if check_target(addr, next, &mut findings) {
                        flow(next, fall, &mut states, &mut visits, &mut queue);
                    }
                }
            }
            Instr::Call { target } => {
                if check_target(addr, u32::from(target), &mut findings) {
                    flow(
                        u32::from(target),
                        State::top(),
                        &mut states,
                        &mut visits,
                        &mut queue,
                    );
                }
                // The callee returns with every register and every
                // tracked memory word unknown (documented imprecision:
                // calls are not analysed interprocedurally).
                if check_target(addr, next, &mut findings) {
                    flow(next, State::top(), &mut states, &mut visits, &mut queue);
                }
            }
            Instr::CallReg { .. } => {
                findings.push(Finding::IndirectFlow {
                    at: addr,
                    call: true,
                });
                // Possible targets were already seeded as roots.
                if check_target(addr, next, &mut findings) {
                    flow(next, State::top(), &mut states, &mut visits, &mut queue);
                }
            }
            Instr::Br { .. } => {
                // Only used to leave the app (handler return); targets
                // inside the app were seeded as roots.
                findings.push(Finding::IndirectFlow {
                    at: addr,
                    call: false,
                });
            }
            Instr::Ret | Instr::Halt | Instr::Fault { .. } => {}
            _ => {
                let mut out = state;
                transfer(instr, &mut out, &peripherals);
                if check_target(addr, next, &mut findings) {
                    flow(next, out, &mut states, &mut visits, &mut queue);
                }
            }
        }
    }

    // Deduplicate findings: a loop re-visits transfer instructions, and
    // each visit records its (identical) finding again.
    findings.sort_by_key(finding_order);
    findings.dedup();

    // Collapse the guard partitions: the reported per-node state is the
    // plain join of every populated slot.
    let joined = states
        .into_iter()
        .map(|(addr, slots)| {
            let mut it = slots.into_iter().flatten();
            let mut acc = it.next().expect("populated node has at least one slot");
            for s in it {
                acc.join_from(&s, 0);
            }
            (addr, acc)
        })
        .collect();

    Fixpoint {
        states: joined,
        findings,
        entry_points,
    }
}

/// The abstract transfer function for straight-line instructions.
fn transfer(instr: Instr, s: &mut State, peripherals: &AddrRange) {
    match instr {
        Instr::MovImm { dst, imm } => s.set(dst, Interval::singleton(imm), None),
        Instr::Mov { dst, src } => {
            // A register copy preserves both the interval and the
            // equality tag.
            let v = s.get(src);
            let tag = s.reg_tag[src.index()];
            s.set(dst, v, tag);
        }
        Instr::Load {
            dst,
            base,
            offset,
            width,
        } => {
            let target = s.get(base).add_signed(i32::from(offset));
            let (v, tag) = s.load(target, width);
            s.set(dst, v, tag);
        }
        Instr::LoadAbs { dst, addr, width } => {
            let (v, tag) = s.load(Interval::singleton(addr), width);
            s.set(dst, v, tag);
        }
        Instr::Store {
            src,
            base,
            offset,
            width,
        } => {
            let target = s.get(base).add_signed(i32::from(offset));
            let value = s.get(src);
            let tag = s.reg_tag[src.index()];
            s.store(target, width, value, tag);
        }
        Instr::StoreAbs { src, addr, width } => {
            let value = s.get(src);
            let tag = s.reg_tag[src.index()];
            s.store(Interval::singleton(addr), width, value, tag);
        }
        Instr::Push { src } => {
            // `SP ← SP − 2; mem[SP] ← src`.
            let new_sp = s.get(Reg::SP).add_signed(-2);
            let value = s.get(src);
            let tag = s.reg_tag[src.index()];
            s.set(Reg::SP, new_sp, None);
            s.store(new_sp, Width::Word, value, tag);
        }
        Instr::Pop { dst } => {
            // `dst ← mem[SP]; SP ← SP + 2`.
            let sp = s.get(Reg::SP);
            let (v, tag) = s.load(sp, Width::Word);
            s.set(Reg::SP, sp.add_signed(2), None);
            s.set(dst, v, tag);
        }
        Instr::Alu { op, dst, src } => {
            let v = match op {
                AluOp::Add => s.get(dst).add(&s.get(src)),
                AluOp::Sub => s.get(dst).sub(&s.get(src)),
                // `x & y` can exceed neither operand (unsigned).
                AluOp::And => Interval::new(0, s.get(dst).hi.min(s.get(src).hi)),
                // `x % y` lands in `[0, max(y)-1]` — but only when the
                // CPU's *signed* remainder cannot go negative: the
                // divisor must be provably positive and the dividend
                // provably non-negative as a signed word (a negative
                // dividend wraps to a large unsigned remainder).
                AluOp::Rem
                    if s.get(src).lo >= 1
                        && s.get(src).hi <= i16::MAX as u16
                        && s.get(dst).hi <= i16::MAX as u16 =>
                {
                    Interval::new(0, s.get(src).hi - 1)
                }
                _ => Interval::TOP,
            };
            s.set(dst, v, None);
            s.cmp = None; // ALU operations overwrite the flags
        }
        Instr::AluImm { op, dst, imm } => {
            let v = match op {
                AluOp::Add => s.get(dst).add(&Interval::singleton(imm)),
                AluOp::Sub => s.get(dst).sub(&Interval::singleton(imm)),
                // `x & imm` can never exceed `imm`.
                AluOp::And => Interval::new(0, imm),
                // `x % imm` lands in `[0, imm-1]` — but only when the
                // CPU's *signed* remainder cannot go negative: the
                // divisor must be a positive literal and the dividend
                // provably non-negative as a signed word (a negative
                // dividend wraps to a large unsigned remainder).
                AluOp::Rem
                    if (1..=i16::MAX as u16).contains(&imm) && s.get(dst).hi <= i16::MAX as u16 =>
                {
                    Interval::new(0, imm - 1)
                }
                _ => Interval::TOP,
            };
            s.set(dst, v, None);
            s.cmp = None;
        }
        Instr::Unary { op, reg } => {
            let v = match op {
                UnaryOp::Shl(k) if u32::from(k) < 16 => {
                    let iv = s.get(reg);
                    let hi = u32::from(iv.hi) << k;
                    if hi > u32::from(u16::MAX) {
                        Interval::TOP
                    } else {
                        Interval::new(iv.lo << k, hi as u16)
                    }
                }
                _ => Interval::TOP,
            };
            s.set(reg, v, None);
            s.cmp = None;
        }
        Instr::Cmp { a, b } => {
            // Register–register compares refine only when the right
            // operand is statically a single value (the flags snapshot
            // that value, even if `b` is later overwritten).
            let bv = s.get(b);
            s.cmp = bv.is_singleton().then_some((a.0, bv.lo));
        }
        Instr::CmpImm { a, imm } => s.cmp = Some((a.0, imm)),
        Instr::Syscall { .. } => {
            // The OS's only app-visible effects are the return value
            // in R14 and peripheral-space writes (MPU reconfiguration
            // during the switch); app registers and app data memory
            // are otherwise untouched — the services run on the host
            // and only *read* app memory.
            s.set(Reg::R14, Interval::TOP, None);
            if !peripherals.is_empty() {
                s.havoc_bytes(peripherals.start, peripherals.end - 1);
            }
        }
        Instr::Nop | Instr::Elided { .. } => {}
        // Control transfers are handled by the walker.
        Instr::Jmp { .. }
        | Instr::Jcc { .. }
        | Instr::Br { .. }
        | Instr::Call { .. }
        | Instr::CallReg { .. }
        | Instr::Ret
        | Instr::Halt
        | Instr::Fault { .. } => {}
    }
}

/// Splits the state over a conditional branch: `(taken, fall-through)`,
/// with `None` marking a provably-infeasible edge.  Refinement applies
/// only when the flags come from a live compare against a known value;
/// the signed conditions additionally require both sides to be provably
/// non-negative (where signed and unsigned order agree).  Every other
/// shape keeps the unrefined state on both edges.
fn split_on_branch(state: &State, cond: Cond) -> (Option<State>, Option<State>) {
    let Some((reg_idx, imm)) = state.cmp else {
        return (Some(state.clone()), Some(state.clone()));
    };
    let reg = Reg(reg_idx);
    match cond {
        Cond::Lo => (
            state.refine(reg, |v| v.below(imm)),
            state.refine(reg, |v| v.at_least(imm)),
        ),
        Cond::Hs => (
            state.refine(reg, |v| v.at_least(imm)),
            state.refine(reg, |v| v.below(imm)),
        ),
        Cond::Eq => (
            state.refine(reg, |v| v.exactly(imm)),
            state.refine(reg, |v| v.excluding(imm)),
        ),
        Cond::Ne => (
            state.refine(reg, |v| v.excluding(imm)),
            state.refine(reg, |v| v.exactly(imm)),
        ),
        // Signed compares: on provably non-negative values the signed
        // and unsigned orders coincide, so the unsigned refinements
        // apply.  (The gate is on the *compared register's* interval,
        // which bounds the runtime value every tagged holder shares.)
        Cond::Lt if state.get(reg).hi <= i16::MAX as u16 && imm <= i16::MAX as u16 => (
            state.refine(reg, |v| v.below(imm)),
            state.refine(reg, |v| v.at_least(imm)),
        ),
        Cond::Ge if state.get(reg).hi <= i16::MAX as u16 && imm <= i16::MAX as u16 => (
            state.refine(reg, |v| v.at_least(imm)),
            state.refine(reg, |v| v.below(imm)),
        ),
        // Sign-flag and out-of-range signed conditions: no refinement.
        Cond::Lt | Cond::Ge | Cond::Mi | Cond::Pl => (Some(state.clone()), Some(state.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(lo: u16, hi: u16) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn store_then_load_roundtrips_through_tracked_memory() {
        let mut s = State::top();
        s.set(Reg::SP, Interval::singleton(0x3000), None);
        s.set(Reg(4), interval(3, 9), None);
        // stw r4, -4(sp) — i.e. store at 0x2FFC.
        s.store(interval(0x2FFC, 0x2FFC), Width::Word, s.get(Reg(4)), None);
        let (v, tag) = s.load(interval(0x2FFC, 0x2FFC), Width::Word);
        assert_eq!(v, interval(3, 9));
        assert_eq!(tag, Some(0x2FFC));
    }

    #[test]
    fn overlapping_store_havocs_tracked_word_and_tags() {
        let mut s = State::top();
        s.mem.insert(0x2FFC, interval(1, 2));
        s.reg_tag[4] = Some(0x2FFC);
        s.mem_tag.insert(0x2F00, 0x2FFC);
        s.mem.insert(0x2F00, interval(1, 2));
        // A byte store at 0x2FFD overlaps the word at 0x2FFC.
        s.store(interval(0x2FFD, 0x2FFD), Width::Byte, Interval::TOP, None);
        assert!(!s.mem.contains_key(&0x2FFC));
        assert_eq!(s.reg_tag[4], None);
        assert!(!s.mem_tag.contains_key(&0x2F00));
        // The copy's own value interval survives — only the equality
        // link to the overwritten word is severed.
        assert!(s.mem.contains_key(&0x2F00));
    }

    #[test]
    fn branch_refinement_propagates_to_tagged_slot() {
        let mut s = State::top();
        // r14 was loaded from slot 0x2FFA (value unknown).
        s.reg_tag[14] = Some(0x2FFA);
        s.cmp = Some((14, 8));
        let (taken, fall) = split_on_branch(&s, Cond::Lo);
        let taken = taken.expect("taken edge feasible");
        assert_eq!(taken.regs[14], interval(0, 7));
        assert_eq!(taken.mem.get(&0x2FFA), Some(&interval(0, 7)));
        let fall = fall.expect("fall edge feasible");
        assert_eq!(fall.regs[14], interval(8, u16::MAX));
        assert_eq!(fall.mem.get(&0x2FFA), Some(&interval(8, u16::MAX)));
    }

    #[test]
    fn infeasible_edge_detected_through_tag() {
        let mut s = State::top();
        s.regs[3] = Interval::singleton(5);
        s.reg_tag[3] = Some(0x2FF0);
        s.mem.insert(0x2FF0, interval(0, 4));
        s.cmp = Some((3, 5));
        // `jhs` taken edge needs r3 ≥ 5 — fine for the register, but
        // the tagged slot says the shared value is < 5 ⇒ contradiction
        // is NOT flagged here (r3's own interval admits 5; the slot
        // refinement at_least(5) on [0,4] is infeasible).
        let (taken, _) = split_on_branch(&s, Cond::Hs);
        assert!(taken.is_none());
    }

    #[test]
    fn syscall_clobbers_only_r14_and_peripheral_words() {
        let mut s = State::top();
        s.set(Reg(4), Interval::singleton(7), None);
        s.set(Reg::R14, Interval::singleton(1), None);
        s.mem.insert(0x2FFC, Interval::singleton(9));
        s.mem.insert(0x0040, Interval::singleton(3)); // peripheral word
        let peripherals = AddrRange {
            start: 0,
            end: 0x1000,
        };
        transfer(Instr::Syscall { num: 1 }, &mut s, &peripherals);
        assert_eq!(s.get(Reg(4)), Interval::singleton(7));
        assert!(s.get(Reg::R14).is_top());
        assert_eq!(s.mem.get(&0x2FFC), Some(&Interval::singleton(9)));
        assert!(!s.mem.contains_key(&0x0040));
    }

    #[test]
    fn widening_drops_changing_memory_words() {
        let mut a = State::top();
        a.mem.insert(0x2FFC, interval(0, 3));
        let mut b = State::top();
        b.mem.insert(0x2FFC, interval(0, 4));
        assert!(a.join_from(&b, WIDEN_AFTER + 1));
        assert!(!a.mem.contains_key(&0x2FFC));
    }
}
