//! Check elision: rewrites a verified image, dropping bound checks the
//! abstract interpretation proved redundant.
//!
//! A check the verifier certifies (see
//! [`analysis`](crate::analysis)) is a `CmpImm` + `Jcc` pair whose
//! branch can never be taken: the compared pointer provably lies on the
//! passing side of the linker-patched bound.  The rewrite replaces the
//! `CmpImm` with an [`Instr::Elided`] placeholder carrying the pair's
//! exact encoded size and fall-through cycle cost, and removes the
//! `Jcc`.  Because the placeholder is cycle- and layout-neutral, an
//! elided image produces bit-identical simulated time, energy and fault
//! behaviour — only the retired-instruction count (and host wall-clock
//! per simulated cycle) drops.  That is what lets the unelided
//! interpreter serve as a property-tested oracle for the elided one.

use crate::analysis::verify_build;
use crate::report::VerifyReport;
use amulet_aft::aft::BuildOutput;
use amulet_mcu::code::InstrStore;
use amulet_mcu::firmware::Firmware;
use amulet_mcu::isa::Instr;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The result of the elision rewrite.
#[derive(Clone, Debug)]
pub struct ElisionOutcome {
    /// The rewritten firmware (identical layout; redundant checks
    /// replaced by [`Instr::Elided`] placeholders).
    pub firmware: Firmware,
    /// The verifier report the rewrite was based on.
    pub report: VerifyReport,
    /// Check sites actually elided.
    pub elided: usize,
    /// Elidable-kind check sites the compiler emitted (the denominator).
    pub candidates: usize,
    /// Sites the verifier certified but the rewrite skipped because some
    /// branch targets the interior of the pair (never happens with the
    /// current compiler, which always branches to sequence heads).
    pub skipped_targeted: usize,
}

/// Verifies a build and rewrites its firmware with every certified
/// check elided.  When nothing is elidable the returned firmware is an
/// unchanged (cheap, `Arc`-shared) clone.
pub fn elide_checks(out: &BuildOutput) -> ElisionOutcome {
    let report = verify_build(out);
    elide_with_report(&out.firmware, report)
}

/// The rewrite half of [`elide_checks`], for callers that already hold a
/// verifier report for exactly this image.
pub fn elide_with_report(firmware: &Firmware, report: VerifyReport) -> ElisionOutcome {
    let candidates: usize = report.apps.iter().map(|a| a.elidable_candidates).sum();

    // Safety scan: an elision splices two instructions into one, which
    // is only sound if nothing ever jumps to the second instruction of
    // the pair.  Collect every statically-known control-flow target.
    let mut targets: BTreeSet<u32> = BTreeSet::new();
    for (_, instr) in firmware.code.iter() {
        match *instr {
            Instr::Jmp { target } | Instr::Jcc { target, .. } | Instr::Call { target } => {
                targets.insert(u32::from(target));
            }
            _ => {}
        }
    }
    targets.extend(firmware.symbols.values().copied());
    for app in &firmware.apps {
        targets.extend(app.handlers.values().copied());
    }

    let mut elide_at: BTreeSet<u32> = BTreeSet::new();
    let mut skipped_targeted = 0usize;
    for app in &report.apps {
        for site in &app.elidable_sites {
            // The pair head may be a branch target (it is the check's
            // entry); the interior `Jcc` must not be.
            let interior = site.addr + pair_head_bytes(firmware, site.addr);
            if targets.contains(&interior) {
                skipped_targeted += 1;
            } else {
                elide_at.insert(site.addr);
            }
        }
    }

    if elide_at.is_empty() {
        return ElisionOutcome {
            firmware: firmware.clone(),
            report,
            elided: 0,
            candidates,
            skipped_targeted,
        };
    }

    // Rebuild the store: each elided pair becomes one placeholder with
    // the pair's encoded size and fall-through cycle cost (`Jcc` costs
    // the same taken or not, so the fall-through cost is just the sum of
    // base cycles).
    let mut rebuilt = InstrStore::new();
    let mut skip: Option<u32> = None;
    for (addr, instr) in firmware.code.iter() {
        if skip == Some(addr) {
            skip = None;
            continue;
        }
        if elide_at.contains(&addr) {
            let cmp = *instr;
            let jcc_addr = addr + cmp.size_bytes();
            let jcc = *firmware
                .code
                .get(jcc_addr)
                .expect("certified site has its Jcc");
            rebuilt.insert(
                addr,
                Instr::Elided {
                    words: (cmp.size_words() + jcc.size_words()) as u8,
                    cycles: (cmp.base_cycles() + jcc.base_cycles()) as u8,
                },
            );
            skip = Some(jcc_addr);
        } else {
            rebuilt.insert(addr, *instr);
        }
    }

    let mut firmware = firmware.clone();
    firmware.code = Arc::new(rebuilt);
    firmware
        .validate()
        .expect("elision preserves layout, so the image stays valid");

    ElisionOutcome {
        firmware,
        report,
        elided: elide_at.len(),
        candidates,
        skipped_targeted,
    }
}

/// Encoded size of the first instruction of the pair at `addr`.
fn pair_head_bytes(firmware: &Firmware, addr: u32) -> u32 {
    firmware.code.get(addr).map_or(4, |i| i.size_bytes())
}
