//! The abstract domain: unsigned 16-bit intervals.
//!
//! Every register holds an over-approximation `[lo, hi]` of the values it
//! can take at a program point.  The domain is deliberately the simplest
//! one that can discharge the compiler's bound checks: the checks compare
//! a pointer against a constant bound with an unsigned condition, so a
//! sound `[lo, hi]` on the pointer register decides the branch whenever
//! the interval lies entirely on one side of the bound.

use std::fmt;

/// An inclusive interval `[lo, hi]` over `u16`, with `TOP = [0, 0xFFFF]`
/// meaning "any value".  Empty intervals are never materialised — the
/// refinement helpers return `None` for infeasible branch edges instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u16,
    /// Largest possible value.
    pub hi: u16,
}

impl Interval {
    /// The whole `u16` range: no information.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u16::MAX,
    };

    /// The interval containing exactly `v`.
    pub fn singleton(v: u16) -> Self {
        Interval { lo: v, hi: v }
    }

    /// An interval from explicit bounds (callers must keep `lo <= hi`).
    pub fn new(lo: u16, hi: u16) -> Self {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// Whether this interval carries no information.
    pub fn is_top(&self) -> bool {
        *self == Self::TOP
    }

    /// Whether this interval pins a single value.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// Least upper bound: the smallest interval containing both.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Abstract addition of two intervals.  Any possible wrap-around
    /// makes the result `TOP` — modular intervals would be more precise
    /// but are not needed to discharge bound checks.
    pub fn add(&self, other: &Interval) -> Interval {
        let lo = u32::from(self.lo) + u32::from(other.lo);
        let hi = u32::from(self.hi) + u32::from(other.hi);
        if hi > u32::from(u16::MAX) {
            Interval::TOP
        } else {
            Interval::new(lo as u16, hi as u16)
        }
    }

    /// Abstract subtraction (`self - other`); `TOP` on possible wrap.
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.lo < other.hi {
            Interval::TOP
        } else {
            Interval::new(self.lo - other.hi, self.hi - other.lo)
        }
    }

    /// Abstract addition of a signed byte offset (`Load`/`Store`
    /// addressing); `TOP` on possible wrap in either direction.
    pub fn add_signed(&self, offset: i32) -> Interval {
        let lo = i64::from(self.lo) + i64::from(offset);
        let hi = i64::from(self.hi) + i64::from(offset);
        if lo < 0 || hi > i64::from(u16::MAX) {
            Interval::TOP
        } else {
            Interval::new(lo as u16, hi as u16)
        }
    }

    /// Refines to the sub-interval `< bound` (the taken edge of an
    /// unsigned `Lo` branch).  `None` means the edge is infeasible.
    pub fn below(&self, bound: u16) -> Option<Interval> {
        if bound == 0 || self.lo >= bound {
            return None;
        }
        Some(Interval::new(self.lo, self.hi.min(bound - 1)))
    }

    /// Refines to the sub-interval `>= bound` (the taken edge of an
    /// unsigned `Hs` branch).  `None` means the edge is infeasible.
    pub fn at_least(&self, bound: u16) -> Option<Interval> {
        if self.hi < bound {
            return None;
        }
        Some(Interval::new(self.lo.max(bound), self.hi))
    }

    /// Refines to exactly `v` (the taken edge of `Eq`, the fall-through
    /// of `Ne`).  `None` means the edge is infeasible.
    pub fn exactly(&self, v: u16) -> Option<Interval> {
        (self.lo <= v && v <= self.hi).then(|| Interval::singleton(v))
    }

    /// Refines away the single value `v` (the fall-through of `Eq`, the
    /// taken edge of `Ne`).  Intervals cannot represent a hole, so only
    /// endpoint exclusions shrink the range — but the endpoint case is
    /// exactly the one boolean-guard diamonds produce (`flag == {0}`
    /// falling through a `jeq`), and excluding it kills the infeasible
    /// edge.  `None` means the edge is infeasible.
    pub fn excluding(&self, v: u16) -> Option<Interval> {
        if !self.contains(v) {
            Some(*self)
        } else if self.is_singleton() {
            None
        } else if v == self.lo {
            Some(Interval::new(self.lo + 1, self.hi))
        } else if v == self.hi {
            Some(Interval::new(self.lo, self.hi - 1))
        } else {
            Some(*self)
        }
    }

    /// Whether `v` is a possible value.
    pub fn contains(&self, v: u16) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of values in the interval.
    pub fn width(&self) -> u32 {
        u32::from(self.hi) - u32::from(self.lo) + 1
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else if self.is_singleton() {
            write!(f, "{{{:#06x}}}", self.lo)
        } else {
            write!(f, "[{:#06x}, {:#06x}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_hull() {
        let a = Interval::new(4, 10);
        let b = Interval::singleton(100);
        assert_eq!(a.join(&b), Interval::new(4, 100));
        assert_eq!(a.join(&Interval::TOP), Interval::TOP);
    }

    #[test]
    fn add_goes_top_on_wrap() {
        let near = Interval::new(0xFFF0, 0xFFFE);
        assert!(near.add(&Interval::singleton(0x20)).is_top());
        assert_eq!(
            Interval::new(4, 8).add(&Interval::singleton(2)),
            Interval::new(6, 10)
        );
    }

    #[test]
    fn signed_offsets_wrap_to_top() {
        assert!(Interval::singleton(1).add_signed(-4).is_top());
        assert_eq!(
            Interval::singleton(0x4400).add_signed(-4),
            Interval::singleton(0x43FC)
        );
    }

    #[test]
    fn refinement_discards_infeasible_edges() {
        let p = Interval::new(0x5000, 0x6000);
        // `p < 0x5000` can never hold…
        assert_eq!(p.below(0x5000), None);
        // …so the fall-through keeps the whole interval.
        assert_eq!(p.at_least(0x5000), Some(p));
        assert_eq!(p.below(0x5800), Some(Interval::new(0x5000, 0x57FF)));
        assert_eq!(Interval::TOP.exactly(7), Some(Interval::singleton(7)));
        assert_eq!(Interval::new(1, 3).exactly(9), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::TOP.to_string(), "⊤");
        assert_eq!(Interval::singleton(0x4400).to_string(), "{0x4400}");
        assert_eq!(Interval::new(0, 1).to_string(), "[0x0000, 0x0001]");
    }
}
