//! Static firmware verifier for Amulet images.
//!
//! This crate closes the loop between the toolchain and the runtime: it
//! analyses a *compiled* [`Firmware`] image — the same bytes the
//! simulator executes — rather than any compiler IR, so its verdicts
//! hold for exactly what ships.
//!
//! Three passes share one fixed point per application:
//!
//! * **CFG recovery** ([`analysis`]) walks the image from the app's
//!   OS-registered handlers, surfacing odd or out-of-image branch
//!   targets, indirect flows and dead code as typed
//!   [`Finding`]s.
//! * **Containment certification** abstract-interprets register value
//!   ranges (an interval domain, [`Interval`]) and classifies every
//!   reachable memory-touching instruction against the app's
//!   [`MpuPlan`](amulet_core::mpu_plan::MpuPlan) as
//!   [`ProvenSafe`](AccessVerdict::ProvenSafe),
//!   [`ProvenEscape`](AccessVerdict::ProvenEscape) or
//!   [`Unknown`](AccessVerdict::Unknown).  The analysis is sound, never
//!   complete: handler arguments are unknown at entry, so any
//!   payload-controlled access stays (at best) unknown.
//! * **Check elision** ([`elide`]) rewrites the image, replacing
//!   compiler-inserted bound checks whose branch provably never fires
//!   with cycle-neutral [`Elided`](amulet_mcu::isa::Instr::Elided)
//!   placeholders.  Simulated time, energy and fault behaviour are
//!   bit-identical; retired instructions (and host wall-clock) drop.
//!
//! [`Firmware`]: amulet_mcu::firmware::Firmware

#![warn(missing_docs)]

pub mod analysis;
pub mod elide;
pub mod interval;
pub mod report;

pub use analysis::{verify_build, verify_firmware, verify_firmware_with_sites};
pub use elide::{elide_checks, elide_with_report, ElisionOutcome};
pub use interval::Interval;
pub use report::{AccessClass, AccessVerdict, AppVerification, Finding, VerifyReport};
