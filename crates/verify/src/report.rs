//! Verifier output: typed findings, per-access verdicts and the
//! per-firmware report the tools render.
//!
//! Everything here is plain data with a deterministic order (apps in
//! image order, findings and accesses in ascending address order), so a
//! serialised report is byte-stable across runs — the CI golden-fixture
//! check depends on that.

use amulet_core::checks::CheckSite;
use amulet_core::method::IsolationMethod;
use std::fmt;

/// A structural defect the CFG recovery found in an app's code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Finding {
    /// A control transfer whose target is odd — the CPU refuses to fetch
    /// from odd addresses, so following this edge faults.
    OddTarget {
        /// Address of the transferring instruction.
        at: u32,
        /// The odd target.
        target: u32,
    },
    /// A control transfer to an address that holds no instruction inside
    /// the app's own code region.
    OutOfImage {
        /// Address of the transferring instruction.
        at: u32,
        /// The wild target.
        target: u32,
    },
    /// A contiguous run of instructions no entry point reaches.
    DeadCode {
        /// First unreached address.
        addr: u32,
        /// Number of unreached instructions in the run.
        instrs: u32,
    },
    /// An indirect control transfer (`br`/`call` through a register); the
    /// verifier over-approximates its targets with every function entry
    /// of the app.
    IndirectFlow {
        /// Address of the indirect transfer.
        at: u32,
        /// Whether it is a call (otherwise a branch).
        call: bool,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::OddTarget { at, target } => {
                write!(f, "odd branch target {target:#06x} at {at:#06x}")
            }
            Finding::OutOfImage { at, target } => {
                write!(f, "out-of-image branch target {target:#06x} at {at:#06x}")
            }
            Finding::DeadCode { addr, instrs } => {
                write!(f, "dead code: {instrs} unreachable instrs from {addr:#06x}")
            }
            Finding::IndirectFlow { at, call } => {
                let what = if *call { "call" } else { "branch" };
                write!(f, "indirect {what} at {at:#06x}")
            }
        }
    }
}

/// The verifier's verdict on one reachable memory-touching instruction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AccessVerdict {
    /// Every address the access can touch is inside the app's planned,
    /// permission-compatible region: the access cannot escape.
    ProvenSafe,
    /// The verdict could not be decided: the address over-approximation
    /// spans both planned and unplanned space.
    Unknown,
    /// Every address the access can touch is outside the app's planned
    /// region (denied or unpoliced): executing it escapes or faults.
    ProvenEscape,
}

impl AccessVerdict {
    /// Stable lower-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AccessVerdict::ProvenSafe => "proven-safe",
            AccessVerdict::Unknown => "unknown",
            AccessVerdict::ProvenEscape => "proven-escape",
        }
    }
}

impl fmt::Display for AccessVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One classified memory access.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessClass {
    /// Address of the instruction.
    pub at: u32,
    /// Rendered instruction text.
    pub instr: String,
    /// Whether the access writes (otherwise it reads).
    pub write: bool,
    /// Lower bound of the abstract target-address interval.
    pub lo: u16,
    /// Upper bound of the abstract target-address interval.
    pub hi: u16,
    /// The verdict.
    pub verdict: AccessVerdict,
}

/// Verification results for one application.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AppVerification {
    /// Application name.
    pub app: String,
    /// Number of entry points the CFG walk started from (handlers, plus
    /// every function entry when the app performs indirect calls).
    pub entry_points: usize,
    /// Reachable instructions.
    pub reachable_instrs: usize,
    /// Unreachable instructions inside the app's code region.
    pub dead_instrs: usize,
    /// Structural findings, ascending address order.
    pub findings: Vec<Finding>,
    /// Every reachable memory access, ascending address order.
    pub accesses: Vec<AccessClass>,
    /// Check sites proven redundant (guarded access proven in bounds),
    /// ascending address order.  Only populated when check-site metadata
    /// is supplied (i.e. when verifying a [`BuildOutput`], not a bare
    /// image).
    ///
    /// [`BuildOutput`]: amulet_aft::aft::BuildOutput
    pub elidable_sites: Vec<CheckSite>,
    /// Total elidable-kind check sites the compiler emitted for this app
    /// (the elision denominator).
    pub elidable_candidates: usize,
}

impl AppVerification {
    /// Count of accesses with the given verdict.
    pub fn count(&self, verdict: AccessVerdict) -> usize {
        self.accesses
            .iter()
            .filter(|a| a.verdict == verdict)
            .count()
    }
}

/// The verifier's report for one firmware image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// Platform the image was linked for.
    pub platform: String,
    /// Isolation method the image was built with.
    pub method: IsolationMethod,
    /// Per-app results, in image order.
    pub apps: Vec<AppVerification>,
}

impl VerifyReport {
    /// Total accesses proven safe across all apps.
    pub fn proven_safe(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.count(AccessVerdict::ProvenSafe))
            .sum()
    }

    /// Total accesses proven to escape across all apps.
    pub fn proven_escape(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.count(AccessVerdict::ProvenEscape))
            .sum()
    }

    /// Total undecided accesses across all apps.
    pub fn unknown(&self) -> usize {
        self.apps
            .iter()
            .map(|a| a.count(AccessVerdict::Unknown))
            .sum()
    }

    /// Total check sites proven redundant across all apps.
    pub fn elidable_sites(&self) -> usize {
        self.apps.iter().map(|a| a.elidable_sites.len()).sum()
    }

    /// The image passes the pre-flight gate when no reachable access is
    /// proven to escape.
    pub fn passes_gate(&self) -> bool {
        self.proven_escape() == 0
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verifier: {} / {} — {} safe, {} unknown, {} escape, {} elidable",
            self.platform,
            self.method,
            self.proven_safe(),
            self.unknown(),
            self.proven_escape(),
            self.elidable_sites(),
        )?;
        for app in &self.apps {
            writeln!(
                f,
                "  {}: {} reachable, {} dead, {} findings",
                app.app,
                app.reachable_instrs,
                app.dead_instrs,
                app.findings.len()
            )?;
            for finding in &app.findings {
                writeln!(f, "    {finding}")?;
            }
            for access in &app.accesses {
                if access.verdict != AccessVerdict::Unknown {
                    writeln!(
                        f,
                        "    {:#06x} {} → {}",
                        access.at, access.instr, access.verdict
                    )?;
                }
            }
        }
        Ok(())
    }
}
