//! End-to-end certification tests: the verifier over real AFT builds,
//! cross-validated against the *dynamic* containment matrix pinned in
//! `crates/fleet/tests/containment.rs`.
//!
//! The dynamic matrix establishes, per (platform, method, fault kind),
//! what a controlled probe actually does: `Escaped` (fr5994 MPU
//! wild-write-peripheral/vector, fr5969 wild-write-vector, No Isolation
//! wild-write-os-ram), `CaughtByMpu`, `CaughtBySoftware` or `Hung`.
//! The static soundness criterion is the complement:
//!
//! * **benign** apps must never produce a proven-escape on any profile
//!   (the gate the fleet build refuses on);
//! * an **adversarial** app whose probe dynamically escaped or was
//!   caught must never be certified clean *by the pass that matters*:
//!   under No Isolation and MPU its attack access must stay
//!   non-proven-safe (the verdict the dynamic `Escaped`/`CaughtByMpu`
//!   cells correspond to), and under the software-check methods the
//!   checks that dynamically catch it (`CaughtBySoftware`) must never
//!   be elided.  (Under Software Only the *checked* store itself may
//!   legitimately prove safe — the guarding checks clamp the pointer on
//!   the fall-through path, which is exactly why they must survive.)

use amulet_aft::aft::{Aft, AppSource, BuildOutput};
use amulet_apps::adversarial::FaultKind;
use amulet_apps::catalog;
use amulet_core::method::IsolationMethod;
use amulet_core::platform::builtin_platforms;
use amulet_mcu::firmware::Firmware;
use amulet_os::events::{Event, EventKind};
use amulet_os::os::{AmuletOs, OsOptions};
use amulet_verify::{elide_checks, verify_build, verify_firmware, AccessVerdict, Finding};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

const METHODS: [IsolationMethod; 4] = [
    IsolationMethod::NoIsolation,
    IsolationMethod::FeatureLimited,
    IsolationMethod::Mpu,
    IsolationMethod::SoftwareOnly,
];

fn build_catalogue(
    method: IsolationMethod,
    platform: &impl amulet_core::platform::Platform,
) -> BuildOutput {
    let mut aft = Aft::for_platform(method, platform);
    for app in catalog() {
        aft = aft.add_app(app.app_source());
    }
    aft.build()
        .unwrap_or_else(|e| panic!("catalogue build {method}: {e}"))
}

/// The benign catalogue certifies containment on every platform ×
/// method: zero proven-escape accesses (the fleet gate), every app
/// reachable from its handlers, and a substantial proven-safe majority.
#[test]
fn benign_catalogue_certifies_containment_everywhere() {
    for platform in builtin_platforms() {
        for method in METHODS {
            let out = build_catalogue(method, &platform);
            let report = verify_build(&out);
            let ctx = format!("{}/{}", report.platform, method);
            assert!(report.passes_gate(), "{ctx}: gate refused:\n{report}");
            assert_eq!(report.proven_escape(), 0, "{ctx}");
            assert!(report.proven_safe() > 0, "{ctx}: nothing proven safe");
            for app in &report.apps {
                assert!(app.entry_points > 0, "{ctx}/{}", app.app);
                assert!(app.reachable_instrs > 0, "{ctx}/{}", app.app);
                assert!(
                    !app.findings.iter().any(|f| matches!(
                        f,
                        Finding::OddTarget { .. } | Finding::OutOfImage { .. }
                    )),
                    "{ctx}/{}: structural finding in benign app",
                    app.app
                );
            }
        }
    }
}

/// Software Only is the check-heavy profile: the verifier certifies a
/// real fraction of the compiler's bound checks as redundant, and the
/// elided image re-verifies to the same containment verdicts.
#[test]
fn software_only_catalogue_elides_redundant_checks() {
    let platform = builtin_platforms().remove(2); // msp430fr5994
    let out = build_catalogue(IsolationMethod::SoftwareOnly, &platform);
    let outcome = elide_checks(&out);
    assert!(outcome.candidates > 0, "no elidable-kind checks emitted");
    assert!(
        outcome.elided > 0,
        "verifier certified nothing on the benign catalogue ({} candidates)",
        outcome.candidates
    );
    assert!(outcome.elided <= outcome.candidates);
    assert_eq!(outcome.skipped_targeted, 0);
    // The rewritten image still validates and still certifies: same
    // gate verdict, no new escapes, and the surviving (un-elided)
    // checks are exactly the non-certified ones.
    outcome.firmware.validate().expect("elided image validates");
    let re = verify_firmware(&outcome.firmware);
    assert!(re.passes_gate(), "elided image fails the gate:\n{re}");
    assert_eq!(re.proven_escape(), 0);
}

/// No Isolation emits no software checks at all, so elision is the
/// identity there.  (MPU is *not* in this set: on MSP430 the
/// three-segment MPU cannot police every boundary, so its builds carry
/// a residual software check list with genuine elision candidates.)
#[test]
fn elision_is_identity_without_software_checks() {
    let out = Aft::new(IsolationMethod::NoIsolation)
        .add_app(catalog()[0].app_source())
        .build()
        .unwrap();
    let outcome = elide_checks(&out);
    assert_eq!(outcome.candidates, 0);
    assert_eq!(outcome.elided, 0);
    assert_eq!(outcome.skipped_targeted, 0);
}

/// The interval domain models remainders (DESIGN §9): `x % N` for a
/// provably-positive divisor bounds the result to `[0, N-1]`, so a
/// modular-index array store certifies — but only when the dividend is
/// provably non-negative, because the CPU's remainder is *signed* and a
/// negative dividend wraps to a large unsigned remainder.  The
/// unconstrained variant of the same access must therefore stay Unknown.
#[test]
fn modular_index_access_certifies_with_nonnegative_dividend() {
    const MODULAR_SAFE: &str = r#"
        int buf[8];
        void main(void) { }
        int go(int x) {
            int i;
            i = (x & 1023) % 8;
            buf[i] = x;
            return i;
        }
    "#;
    // Identical shape, but the payload-controlled dividend may be
    // negative: (-3) % 8 == -3 on this CPU, i.e. 0xFFFD as an index.
    const MODULAR_SIGNED: &str = r#"
        int buf[8];
        void main(void) { }
        int go(int x) {
            int i;
            i = x % 8;
            buf[i] = x;
            return i;
        }
    "#;
    let verify = |src| {
        verify_build(
            &Aft::new(IsolationMethod::NoIsolation)
                .add_app(AppSource::new("Modular", src, &["main", "go"]))
                .build()
                .unwrap(),
        )
    };
    let safe = verify(MODULAR_SAFE);
    let app = &safe.apps[0];
    assert_eq!(
        app.count(AccessVerdict::Unknown),
        0,
        "the clamped modular index must certify:\n{safe}"
    );
    assert_eq!(app.count(AccessVerdict::ProvenEscape), 0);
    assert!(app.count(AccessVerdict::ProvenSafe) > 0);

    let signed = verify(MODULAR_SIGNED);
    let app = &signed.apps[0];
    assert!(
        app.count(AccessVerdict::Unknown) > 0,
        "a possibly-negative dividend must not certify:\n{signed}"
    );
}

/// Every adversarial variant of the PR 8 fault campaign, on every
/// platform × method profile, cross-checked against its dynamic verdict
/// (see module docs): the attack is never statically certified away.
#[test]
fn adversarial_variants_are_never_certified_clean() {
    for platform in builtin_platforms() {
        for method in METHODS {
            // Kinds sharing one app share one image; build each app once.
            let mut done: BTreeSet<&'static str> = BTreeSet::new();
            for kind in FaultKind::ALL {
                let adapted = kind.adapted_for(method);
                let adv = adapted.app();
                if !done.insert(adv.name) {
                    continue;
                }
                let out = Aft::for_platform(method, &platform)
                    .add_app(catalog()[0].app_source())
                    .add_app(adv.app_source())
                    .build()
                    .unwrap_or_else(|e| panic!("{method}/{}: {e}", adv.name));
                let report = verify_build(&out);
                let app = report
                    .apps
                    .iter()
                    .find(|a| a.app == adv.name)
                    .expect("adversarial app verified");
                let ctx = format!("{}/{}/{}", report.platform, method, adv.name);

                match adapted {
                    // Liveness attack: contained by the watchdog, not by
                    // memory policing — nothing for the verifier to pin.
                    FaultKind::RunawayLoop => {}
                    // Control-flow attack: the indirect call is surfaced
                    // as a finding (and its function-pointer checks, when
                    // the method emits them, survive — asserted above).
                    FaultKind::WildCallPeripheral => {
                        assert!(
                            app.findings
                                .iter()
                                .any(|f| matches!(f, Finding::IndirectFlow { call: true, .. })),
                            "{ctx}: indirect call not surfaced"
                        );
                    }
                    // Memory attacks: under the methods without software
                    // checks the payload-controlled access must stay
                    // non-proven-safe — matching the dynamic Escaped /
                    // CaughtByMpu verdicts.  Under the software methods
                    // the checks clamp the access (CaughtBySoftware), so
                    // the surviving checks asserted above are the pin.
                    _ => {
                        if matches!(method, IsolationMethod::NoIsolation | IsolationMethod::Mpu) {
                            assert!(
                                app.count(AccessVerdict::Unknown)
                                    + app.count(AccessVerdict::ProvenEscape)
                                    > 0,
                                "{ctx}: payload-controlled access certified safe"
                            );
                        }
                    }
                }

                // Guard survival: whenever the build emits checks for
                // this app, the ones policing the payload-controlled
                // access can never certify (its pointer is statically
                // unknown), so *some* candidate must survive elision.
                // Constant-index checks of the same app (ArrayOob's
                // `a[0]` read-back) may legitimately elide — the pin is
                // "strictly fewer than all", not "none".
                if adapted != FaultKind::RunawayLoop && app.elidable_candidates > 0 {
                    assert!(
                        app.elidable_sites.len() < app.elidable_candidates,
                        "{ctx}: every attack-guarding check certified redundant ({}/{})",
                        app.elidable_sites.len(),
                        app.elidable_candidates
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Elided-vs-unelided behaviour equivalence: the unelided interpreter is
// the oracle.  Elision is cycle-neutral by construction, so *everything*
// the OS accounts — outcomes, logs, faults, app states, per-app cycle
// stats, total cycles (hence energy, which is a pure function of
// cycles) — must be identical; only retired instructions may drop.
// ---------------------------------------------------------------------

/// Faults (a wild write into OS memory) when the payload is large, so
/// event sequences exercise fault paths in the elided image too.
const CRASHY: &str = r#"
    int c = 0;
    void main(void) { }
    int go(int x) {
        int *p;
        if (x > 900) {
            p = 0x4400;
            *p = 1;
        }
        c = c + 1;
        amulet_log_value(c);
        return c;
    }
"#;

fn equivalence_fixture() -> &'static (Firmware, Firmware, usize) {
    static FIXTURE: OnceLock<(Firmware, Firmware, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let apps = catalog();
        let out = Aft::new(IsolationMethod::SoftwareOnly)
            .add_app(apps[0].app_source()) // BatteryMeter: elidable loop checks
            .add_app(apps[2].app_source()) // FallDetection: elidable loop checks
            .add_app(AppSource::new("Crashy", CRASHY, &["main", "go"]))
            .build()
            .unwrap();
        let outcome = elide_checks(&out);
        assert!(outcome.elided > 0, "fixture must actually elide something");
        (out.firmware, outcome.firmware, outcome.elided)
    })
}

fn handler_for(app: usize, choice: usize) -> &'static str {
    match (app, choice) {
        (_, 2) => "nope", // missing handler → Skipped
        (0, _) => "on_timer",
        (1, _) => "on_accel",
        _ => "go",
    }
}

/// Everything the OS observes about a run (instruction counts excluded
/// on purpose — those are the one thing elision changes).
#[derive(PartialEq, Debug)]
struct RunTrace {
    log: Vec<(usize, i16)>,
    faults: Vec<(usize, String)>,
    app_states: Vec<String>,
    app_stats: Vec<(u64, u64, u64, u64, u64, u64)>,
    total_cycles: u64,
}

fn drive(firmware: &Firmware, events: &[(usize, usize, u16)]) -> (RunTrace, u64) {
    let mut os = AmuletOs::with_options(
        firmware.clone(),
        OsOptions {
            step_budget: 50_000,
            ..OsOptions::default()
        },
    );
    os.boot();
    for &(app, choice, payload) in events {
        os.post_event(Event::new(
            app % 3,
            handler_for(app % 3, choice),
            payload,
            EventKind::User,
        ));
        os.pump();
    }
    os.flush();
    let trace = RunTrace {
        log: os
            .services
            .log
            .iter()
            .map(|l| (l.app_index, l.value))
            .collect(),
        faults: os
            .faults
            .records
            .iter()
            .map(|r| (r.app_index, format!("{:?}/{:?}", r.class, r.action)))
            .collect(),
        app_states: (0..os.app_count())
            .map(|i| format!("{:?}", os.app_state(i)))
            .collect(),
        app_stats: os
            .stats
            .iter()
            .map(|s| {
                (
                    s.events_delivered,
                    s.syscalls,
                    s.faults,
                    s.app_cycles,
                    s.service_cycles,
                    s.switch_cycles,
                )
            })
            .collect(),
        total_cycles: os.total_cycles(),
    };
    (trace, os.cpu_stats().instructions)
}

/// Deterministic witness: a workload that runs every app (including a
/// fault) behaves identically on the elided image while retiring
/// strictly fewer instructions.
#[test]
fn elided_image_is_cycle_identical_and_retires_fewer_instructions() {
    let (unelided, elided, _) = equivalence_fixture();
    let events: Vec<(usize, usize, u16)> = vec![
        (0, 0, 40),
        (1, 0, 120),
        (2, 0, 10),
        (0, 1, 77),
        (2, 0, 950), // Crashy faults here
        (1, 1, 30),
        (0, 2, 5), // missing handler
        (0, 0, 61),
    ];
    let (base, base_instrs) = drive(unelided, &events);
    let (fast, fast_instrs) = drive(elided, &events);
    assert!(!base.faults.is_empty(), "workload must exercise a fault");
    assert_eq!(base, fast);
    assert!(
        fast_instrs < base_instrs,
        "elided image must retire fewer instructions ({fast_instrs} vs {base_instrs})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for arbitrary event/fault sequences the elided image is
    /// indistinguishable from the unelided oracle in every OS-visible
    /// quantity, and never retires more instructions.
    #[test]
    fn elided_interpreter_agrees_with_unelided_oracle(
        events in vec((0usize..3, 0usize..3, 0u16..1000), 1..40),
    ) {
        let (unelided, elided, _) = equivalence_fixture();
        let (base, base_instrs) = drive(unelided, &events);
        let (fast, fast_instrs) = drive(elided, &events);
        prop_assert_eq!(base, fast);
        prop_assert!(fast_instrs <= base_instrs);
    }
}
