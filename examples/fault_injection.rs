//! Fault-injection tour: drive every class of isolation violation the system
//! defends against and show how each memory model reacts, including the
//! restart policies from the paper's discussion section.
//!
//! Run with `cargo run --example fault_injection`.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome, OsOptions};
use amulet_iso::os::policy::RestartPolicy;

const CHAOS: &str = r#"
    int state = 1;
    int data[4];

    void main(void) { }

    int read_below(int addr)  { int *p; p = addr; return *p; }
    int write_above(int addr) { int *p; p = addr; *p = 7; return 1; }
    int overrun(int n) {
        for (int i = 0; i < n; i++) { data[i] = i; }
        return n;
    }
    int deep(int n) {
        if (n <= 0) { return 0; }
        int local[16];
        local[0] = n;
        return local[0] + deep(n - 1);
    }
    int bump(int x) { state += x; return state; }
"#;

fn scenario(method: IsolationMethod, policy: RestartPolicy) {
    println!("=== {method} (policy {policy:?}) ===");
    let build = Aft::new(method)
        .add_app(
            AppSource::new(
                "Chaos",
                CHAOS,
                &[
                    "main",
                    "read_below",
                    "write_above",
                    "overrun",
                    "deep",
                    "bump",
                ],
            )
            .with_stack(256),
        )
        .build()
        .expect("build");
    let mut os = AmuletOs::with_options(
        build.firmware,
        OsOptions {
            restart_policy: policy,
            ..OsOptions::default()
        },
    );
    os.boot();

    let cases: [(&str, u16, &str); 4] = [
        ("read_below", 0x4500, "read OS memory below the app"),
        (
            "write_above",
            0xF800,
            "write above the app (another app's slot)",
        ),
        ("overrun", 64, "overrun a 4-element array"),
        ("deep", 200, "recurse until the stack overflows"),
    ];
    for (handler, payload, what) in cases {
        let (outcome, _) = os.call_handler(0, handler, payload);
        println!("  {what:<42} -> {outcome:?}");
        // Under a restart policy the app keeps running after each incident.
        let (alive, _) = os.call_handler(0, "bump", 1);
        println!(
            "    app still schedulable afterwards? {:?}",
            alive == DeliveryOutcome::Completed
        );
    }
    println!("  total faults recorded: {}", os.faults.records.len());
    println!();
}

fn main() {
    // No isolation: every attack silently "succeeds" (completes).
    scenario(IsolationMethod::NoIsolation, RestartPolicy::Kill);
    // The paper's hybrid method with the baseline kill policy.
    scenario(IsolationMethod::Mpu, RestartPolicy::Kill);
    // The same method with the restart-with-limit policy from §5.
    scenario(
        IsolationMethod::Mpu,
        RestartPolicy::RestartWithLimit { max_restarts: 8 },
    );
    // Full software isolation.
    scenario(IsolationMethod::SoftwareOnly, RestartPolicy::Restart);
}
