//! Multi-application isolation: a health app and a (buggy or malicious)
//! third-party app share one wearable.  The firmware is built once per
//! memory model to show which models actually contain the damage.
//!
//! Run with `cargo run --example multi_app_isolation`.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome};

const HEART_RATE: &str = r#"
    int readings[16];
    int head = 0;

    void main(void) { amulet_subscribe(2); }

    int on_hr(int unused) {
        int hr = amulet_get_heart_rate();
        readings[head % 16] = hr;
        head = head + 1;
        return hr;
    }

    int average(int unused) {
        int sum = 0;
        for (int i = 0; i < 16; i++) { sum += readings[i]; }
        return sum / 16;
    }
"#;

const SNOOPER: &str = r#"
    void main(void) { }

    int snoop(int addr) {
        int *p;
        p = addr;
        return *p;
    }

    int scribble(int addr) {
        int *p;
        p = addr;
        *p = 0x666;
        return 1;
    }
"#;

fn main() {
    for method in [
        IsolationMethod::NoIsolation,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ] {
        println!("=== {method} ===");
        let build = Aft::new(method)
            .add_app(AppSource::new(
                "HeartRate",
                HEART_RATE,
                &["main", "on_hr", "average"],
            ))
            .add_app(AppSource::new(
                "Snooper",
                SNOOPER,
                &["main", "snoop", "scribble"],
            ))
            .build()
            .expect("build");
        let hr_data = build.firmware.apps[0].placement.data.start;
        let mut os = AmuletOs::new(build.firmware);
        os.boot();

        // The health app collects a few samples.
        for _ in 0..8 {
            os.call_handler(0, "on_hr", 0);
        }
        os.call_handler(0, "average", 0);
        let average = os.device.cpu.reg(amulet_iso::mcu::isa::Reg::R14);
        println!("  heart-rate average: {average}");

        // The snooper tries to read and corrupt the health app's buffer.
        let (read, _) = os.call_handler(1, "snoop", hr_data as u16);
        println!("  snoop(heart-rate data)   -> {read:?}");
        let (write, _) = os.call_handler(1, "scribble", hr_data as u16);
        println!("  scribble(heart-rate data)-> {write:?}");

        match method {
            IsolationMethod::NoIsolation => {
                assert_eq!(read, DeliveryOutcome::Completed, "nothing stops the read");
                println!("  -> with no isolation the snooper read private health data undetected");
            }
            _ => {
                assert!(matches!(read, DeliveryOutcome::Faulted(_)));
                println!(
                    "  -> blocked; fault recorded for app `{}`: {}",
                    os.faults.records.last().unwrap().app_name,
                    os.faults.records.last().unwrap().class
                );
            }
        }
        println!();
    }
}
