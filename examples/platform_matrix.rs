//! Platform matrix: build and run the same application on every built-in
//! platform profile under every isolation method, and print what each
//! combination costs — the FR5969's segmented MPU against the FR5994-class
//! region MPU.
//!
//! Run with `cargo run --example platform_matrix`.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::core::overhead::OverheadModel;
use amulet_iso::core::platform::builtin_platforms;
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome};

const COUNTER: &str = r#"
    int n = 0;
    void main(void) { }
    int tick(int d) { n += d; amulet_log_value(n); return n; }
"#;

fn main() {
    for platform in builtin_platforms() {
        println!("platform {} — {}", platform.name, platform.mpu);
        for method in IsolationMethod::ALL {
            let out = Aft::for_platform(method, &platform)
                .add_app(AppSource::new("Counter", COUNTER, &["main", "tick"]))
                .build()
                .expect("counter builds everywhere");
            let mut os = AmuletOs::new(out.firmware);
            os.boot();
            let mut cycles = 0;
            for _ in 0..10 {
                let (outcome, c) = os.call_handler(0, "tick", 1);
                assert_eq!(outcome, DeliveryOutcome::Completed);
                cycles += c;
            }
            let model = OverheadModel::for_platform(method, &platform);
            println!(
                "  {:<16} {:>6} cycles / 10 events   (analytic: {:>2} cyc/access, {:>3} cyc/switch)",
                method.label(),
                cycles,
                model.absolute_memory_access_cycles(),
                model.absolute_context_switch_cycles(),
            );
        }
        println!();
    }
}
