//! Reproduce the Figure-2 style analysis for a custom application: profile
//! it with the Amulet Resource Profiler and estimate what each isolation
//! method would cost in weekly cycles and battery lifetime.
//!
//! Run with `cargo run --example profile_battery_impact`.

use amulet_iso::arp::arp::Arp;
use amulet_iso::arp::profile::{AppProfile, HandlerProfile};
use amulet_iso::core::method::IsolationMethod;

fn main() {
    // A hypothetical sleep-tracking app: accelerometer batches at 2 Hz with a
    // 64-sample analysis window, plus a minute-level summary that makes a few
    // API calls.
    let profile = AppProfile::new(
        "SleepTracker",
        vec![
            HandlerProfile::new("on_accel_batch", 70, 1, 2.0 * 3600.0),
            HandlerProfile::new("on_minute", 120, 4, 60.0),
        ],
    );

    let arp = Arp::default();
    println!(
        "{:<16} {:>16} {:>12} {:>12}",
        "memory model", "Gcycles/week", "J/week", "battery %"
    );
    for method in IsolationMethod::ISOLATING {
        let est = arp.estimate(&profile, method);
        println!(
            "{:<16} {:>16.3} {:>12.3} {:>12.4}",
            method.label(),
            est.billions_of_cycles_per_week,
            est.joules_per_week,
            est.battery_impact_percent
        );
    }

    // Which method should this developer pick?  The ARP ratio tells you:
    // memory-access-heavy apps benefit from the MPU method, API-heavy apps
    // are better off with Software Only.
    println!();
    println!(
        "memory-accesses per context switch: {:.1}",
        profile.access_to_switch_ratio()
    );
    let mpu = arp.estimate(&profile, IsolationMethod::Mpu).cycles_per_week;
    let sw = arp
        .estimate(&profile, IsolationMethod::SoftwareOnly)
        .cycles_per_week;
    if mpu < sw {
        println!("=> the hybrid MPU method is the cheaper choice for this app");
    } else {
        println!("=> the software-only method is the cheaper choice for this app");
    }
}
