//! Quickstart: compile an application with the Amulet Firmware Toolchain,
//! boot AmuletOS on the simulated MSP430FR5969, deliver events, and watch the
//! MPU + compiler-inserted checks stop a stray pointer.
//!
//! Run with `cargo run --example quickstart`.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome};

const STEP_COUNTER: &str = r#"
    int steps = 0;
    int window[8];

    void main(void) {
        amulet_subscribe(1);
    }

    int on_accel(int sample) {
        // Keep a small window of samples and count threshold crossings.
        window[steps % 8] = sample;
        if (sample > 600) {
            steps = steps + 1;
            amulet_log_value(steps);
        }
        return steps;
    }

    int oops(int addr) {
        // A buggy handler: dereferences an attacker-controlled address.
        int *p;
        p = addr;
        return *p;
    }
"#;

fn main() {
    // 1. Build a firmware image with the paper's hybrid MPU isolation method.
    let build = Aft::new(IsolationMethod::Mpu)
        .add_app(AppSource::new(
            "StepCounter",
            STEP_COUNTER,
            &["main", "on_accel", "oops"],
        ))
        .build()
        .expect("firmware build");
    println!("{}", build.report);
    println!("{}", build.memory_map);

    // 2. Boot the OS on the simulated device.
    let mut os = AmuletOs::new(build.firmware);
    os.boot();

    // 3. Deliver some accelerometer events.
    for sample in [200, 700, 650, 100, 800] {
        let (outcome, cycles) = os.call_handler(0, "on_accel", sample);
        println!("on_accel({sample:4}) -> {outcome:?} in {cycles} cycles");
    }
    println!(
        "log = {:?}",
        os.services.log.iter().map(|e| e.value).collect::<Vec<_>>()
    );

    // 4. Now the buggy handler tries to read OS memory at 0x4400.  The
    //    compiler-inserted lower-bound check catches it and the OS fault
    //    handler kills the app.
    let (outcome, _) = os.call_handler(0, "oops", 0x4400);
    println!("oops(0x4400) -> {outcome:?}");
    assert!(matches!(outcome, DeliveryOutcome::Faulted(_)));
    println!("fault log: {:?}", os.faults.records.last().unwrap().class);
    println!("app state: {:?}", os.app_state(0));
}
