//! Meta-crate for the Amulet memory-isolation reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests can
//! use a single dependency.  See the repository `README.md` for the crate
//! map and the paper→code mapping.
pub use amulet_aft as aft;
pub use amulet_apps as apps;
pub use amulet_arp as arp;
pub use amulet_core as core;
pub use amulet_fleet as fleet;
pub use amulet_mcu as mcu;
pub use amulet_os as os;
pub use amulet_verify as verify;
