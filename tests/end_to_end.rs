//! Cross-crate integration tests: AmuletC source → AFT → firmware → AmuletOS
//! on the simulated MSP430FR5969, under every memory model.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::apps;
use amulet_iso::core::fault::FaultClass;
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::mcu::isa::Reg;
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome};
use amulet_iso::os::policy::AppState;

/// The full nine-application catalogue builds and boots under every memory
/// model, and every app survives a burst of its dominant event.
#[test]
fn full_catalog_boots_and_runs_under_every_method() {
    for method in IsolationMethod::ALL {
        let mut aft = Aft::new(method);
        for app in apps::catalog() {
            aft = aft.add_app(app.app_source());
        }
        let build = aft.build().unwrap_or_else(|e| panic!("{method}: {e}"));
        assert_eq!(build.firmware.apps.len(), 9);

        let mut os = AmuletOs::new(build.firmware);
        os.boot();
        for (idx, app) in apps::catalog().iter().enumerate() {
            let (handler, _) = app.dominant_handler();
            for i in 0..5 {
                let (outcome, _) = os.call_handler(idx, handler, 400 + i);
                assert_eq!(
                    outcome,
                    DeliveryOutcome::Completed,
                    "{method}: {} / {handler}",
                    app.name
                );
            }
            assert_eq!(os.app_state(idx), AppState::Active);
        }
        // Every delivery went through the context-switch machinery.
        let total_events: u64 = os.stats.iter().map(|s| s.events_delivered).sum();
        assert!(total_events >= 9 * 5);
    }
}

/// The isolation guarantee itself: under every isolating method, an app that
/// dereferences memory outside its own region faults; under No Isolation the
/// same access silently succeeds.
#[test]
fn isolation_guarantee_holds_for_every_isolating_method() {
    let victim = r#"
        int secret = 4242;
        void main(void) { }
        int get(int x) { return secret; }
    "#;
    let attacker_ptr = r#"
        void main(void) { }
        int attack(int addr) { int *p; p = addr; return *p; }
    "#;
    let attacker_fl = r#"
        int local[4];
        void main(void) { }
        int attack(int addr) {
            int total = 0;
            for (int i = 0; i < 4096; i++) { total += local[i]; }
            return total;
        }
    "#;

    for method in IsolationMethod::ISOLATING {
        let attacker_src = if method == IsolationMethod::FeatureLimited {
            attacker_fl
        } else {
            attacker_ptr
        };
        let build = Aft::new(method)
            .add_app(AppSource::new("Victim", victim, &["main", "get"]))
            .add_app(AppSource::new(
                "Attacker",
                attacker_src,
                &["main", "attack"],
            ))
            .build()
            .unwrap();
        let secret_addr = build.firmware.apps[0].placement.data.start as u16;
        let mut os = AmuletOs::new(build.firmware);
        os.boot();
        let (outcome, _) = os.call_handler(1, "attack", secret_addr);
        assert!(
            matches!(outcome, DeliveryOutcome::Faulted(_)),
            "{method}: cross-app read must fault, got {outcome:?}"
        );
    }

    // Baseline: no isolation, the secret leaks.
    let build = Aft::new(IsolationMethod::NoIsolation)
        .add_app(AppSource::new("Victim", victim, &["main", "get"]))
        .add_app(AppSource::new(
            "Attacker",
            attacker_ptr,
            &["main", "attack"],
        ))
        .build()
        .unwrap();
    let secret_addr = build.firmware.apps[0].placement.data.start as u16;
    let mut os = AmuletOs::new(build.firmware);
    os.boot();
    let (outcome, _) = os.call_handler(1, "attack", secret_addr);
    assert_eq!(outcome, DeliveryOutcome::Completed);
    assert_eq!(os.device.cpu.reg(Reg::R14), 4242, "the secret was read");
}

/// A faulted app never takes the rest of the system down: other apps keep
/// running and the OS keeps serving them.
#[test]
fn fault_containment_keeps_other_apps_alive() {
    let good = r#"
        int n = 0;
        void main(void) { }
        int tick(int d) { n += d; amulet_log_value(n); return n; }
    "#;
    let bad = r#"
        void main(void) { }
        int boom(int x) { int *p; p = 0x4400; *p = 1; return 0; }
    "#;
    let build = Aft::new(IsolationMethod::Mpu)
        .add_app(AppSource::new("Good", good, &["main", "tick"]))
        .add_app(AppSource::new("Bad", bad, &["main", "boom"]))
        .build()
        .unwrap();
    let mut os = AmuletOs::new(build.firmware);
    os.boot();

    let (outcome, _) = os.call_handler(1, "boom", 0);
    assert!(matches!(
        outcome,
        DeliveryOutcome::Faulted(FaultClass::DataPointerLowerBound)
    ));
    assert_eq!(os.app_state(1), AppState::Killed);

    for i in 1..=10 {
        let (outcome, _) = os.call_handler(0, "tick", 1);
        assert_eq!(outcome, DeliveryOutcome::Completed);
        assert_eq!(os.device.cpu.reg(Reg::R14), i);
    }
    assert_eq!(os.app_state(0), AppState::Active);
}

/// The same application source computes identical results under every memory
/// model that can compile it — isolation must never change program
/// behaviour, only its cost.
#[test]
fn isolation_never_changes_program_results() {
    let src = r#"
        int fib_table[20];
        void main(void) { }
        int compute(int n) {
            fib_table[0] = 0;
            fib_table[1] = 1;
            for (int i = 2; i < 20; i++) {
                fib_table[i] = fib_table[i - 1] + fib_table[i - 2];
            }
            if (n >= 20) { n = 19; }
            return fib_table[n];
        }
    "#;
    let mut results = Vec::new();
    for method in IsolationMethod::ALL {
        let build = Aft::new(method)
            .add_app(AppSource::new("Fib", src, &["main", "compute"]))
            .build()
            .unwrap();
        let mut os = AmuletOs::new(build.firmware);
        os.boot();
        let (outcome, _) = os.call_handler(0, "compute", 16);
        assert_eq!(outcome, DeliveryOutcome::Completed);
        results.push(os.device.cpu.reg(Reg::R14));
    }
    assert!(
        results.iter().all(|&r| r == 987),
        "fib(16) = 987 under every method: {results:?}"
    );
}

/// Cycle accounting is self-consistent: per-app stats sum to the device's
/// cycle counter (within the OS bookkeeping performed outside any app).
#[test]
fn cycle_accounting_is_consistent() {
    let build = Aft::new(IsolationMethod::Mpu)
        .add_app(apps::synthetic().app_source(IsolationMethod::Mpu))
        .build()
        .unwrap();
    let mut os = AmuletOs::new(build.firmware);
    os.boot();
    for _ in 0..5 {
        os.call_handler(0, "mem_ops", 3);
        os.call_handler(0, "switch_ops", 3);
    }
    let attributed: u64 = os.stats.iter().map(|s| s.total_cycles()).sum();
    let total = os.total_cycles();
    assert!(attributed <= total);
    assert!(
        attributed * 10 >= total * 9,
        "at least 90% of cycles are attributed to apps ({attributed} of {total})"
    );
}
