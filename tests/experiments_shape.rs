//! Integration tests asserting the *shape* of every experiment in the
//! paper's evaluation section — who wins, by roughly what factor, and where
//! the crossovers fall — as reproduced by the benchmark harness.

use amulet_iso::core::method::IsolationMethod;

/// Table 1 shape: per-operation costs keep the paper's orderings, and the
/// MPU method needs half as many pointer checks as Software Only.
#[test]
fn table1_shape() {
    let rows = amulet_bench::table1::measure(20);
    let get = |m| rows.iter().find(|r| r.method == m).unwrap();
    let none = get(IsolationMethod::NoIsolation);
    let fl = get(IsolationMethod::FeatureLimited);
    let mpu = get(IsolationMethod::Mpu);
    let sw = get(IsolationMethod::SoftwareOnly);

    // Memory access: No Isolation < MPU < Software Only < Feature Limited.
    assert!(none.memory_access_cycles < mpu.memory_access_cycles);
    assert!(mpu.memory_access_cycles < sw.memory_access_cycles);
    assert!(sw.memory_access_cycles < fl.memory_access_cycles);

    // Context switch: baseline methods tie, Software Only pays a small stack
    // premium, the MPU method pays the reconfiguration premium on top.
    assert!((none.context_switch_cycles - fl.context_switch_cycles).abs() < 1.0);
    assert!(sw.context_switch_cycles > none.context_switch_cycles);
    assert!(mpu.context_switch_cycles > sw.context_switch_cycles + 20.0);

    // And the analytic model reproduces the paper's exact Table 1 values.
    for r in &rows {
        assert_eq!(r.analytic_memory_access, r.paper_memory_access);
        assert_eq!(r.analytic_context_switch, r.paper_context_switch);
    }
}

/// Figure 2 shape: every one of the nine applications stays below 0.5 %
/// battery impact under both the MPU and Software Only methods, and the
/// computation-heavy apps prefer MPU while the API-heavy logger prefers
/// Software Only.
#[test]
fn figure2_shape() {
    let rows = amulet_bench::fig2::compute();
    assert_eq!(rows.len(), 27, "nine apps × three isolating methods");
    for r in &rows {
        assert!(
            r.battery_impact_percent < 0.5,
            "{}: {}%",
            r.app,
            r.battery_impact_percent
        );
    }
    let g = |app: &str, m| {
        rows.iter()
            .find(|r| r.app == app && r.method == m)
            .unwrap()
            .billions_of_cycles_per_week
    };
    for compute_heavy in ["Pedometer", "FallDetection", "HR"] {
        assert!(
            g(compute_heavy, IsolationMethod::Mpu)
                < g(compute_heavy, IsolationMethod::SoftwareOnly),
            "{compute_heavy} should favour the MPU method"
        );
        assert!(
            g(compute_heavy, IsolationMethod::Mpu)
                < g(compute_heavy, IsolationMethod::FeatureLimited),
            "{compute_heavy} should beat Feature Limited under MPU"
        );
    }
    assert!(
        g("HRLog", IsolationMethod::SoftwareOnly) < g("HRLog", IsolationMethod::Mpu),
        "the API-heavy logger should favour Software Only"
    );
}

/// Figure 3 shape: for the memory-access-dominated benchmarks the MPU method
/// has the lowest slowdown of the isolating methods, and all slowdowns stay
/// within the figure's 0–50 % range.
#[test]
fn figure3_shape() {
    let rows = amulet_bench::fig3::measure(20);
    for workload in ["Activity Case 1", "Activity Case 2", "Quicksort"] {
        let get = |m| {
            rows.iter()
                .find(|r| r.workload == workload && r.method == m)
                .unwrap()
                .slowdown_percent
        };
        let mpu = get(IsolationMethod::Mpu);
        let sw = get(IsolationMethod::SoftwareOnly);
        let fl = get(IsolationMethod::FeatureLimited);
        assert_eq!(get(IsolationMethod::NoIsolation), 0.0);
        assert!(mpu > 0.0, "{workload}: isolation is not free");
        assert!(
            mpu < sw,
            "{workload}: MPU ({mpu}%) beats Software Only ({sw}%)"
        );
        assert!(
            mpu < fl,
            "{workload}: MPU ({mpu}%) beats Feature Limited ({fl}%)"
        );
        for v in [mpu, sw, fl] {
            assert!(
                v < 120.0,
                "{workload}: slowdown {v}% is within a plausible range"
            );
        }
    }
}

/// Ablation shapes: zeroing a shared stack is far more expensive than
/// dedicated per-app stacks, and an advanced MPU would remove most of the
/// check overhead for compute-heavy workloads.
#[test]
fn ablation_shapes() {
    let stacks = amulet_bench::ablation::stack_ablation(30);
    assert!(stacks[2].cycles_per_event > stacks[0].cycles_per_event);
    assert!(stacks[2].cycles_per_event > 2.0 * stacks[1].cycles_per_event);

    let adv = amulet_bench::ablation::advanced_mpu_ablation(5);
    let quick = adv.iter().find(|r| r.workload == "Quicksort").unwrap();
    assert!(quick.advanced_mpu_slowdown_percent < quick.mpu_slowdown_percent);
    assert!(quick.check_share_percent > 50.0);
}
