//! Cross-platform integration tests for the Platform/MpuModel abstraction
//! layer: the FR5969 path must reproduce the exact pre-refactor cycle
//! numbers, and the same applications must build, run and stay isolated on
//! the region-MPU platform profile.

use amulet_iso::aft::aft::{Aft, AppSource};
use amulet_iso::core::method::IsolationMethod;
use amulet_iso::core::mpu_plan::MpuConfig;
use amulet_iso::core::overhead::OverheadModel;
use amulet_iso::core::platform::{
    builtin_platforms, MpuModel, Msp430Fr5969, Msp430Fr5994, Platform,
};
use amulet_iso::core::switch::{ContextSwitchPlan, SwitchDirection};
use amulet_iso::os::os::{AmuletOs, DeliveryOutcome};

/// Both MPU models instantiate, and the FR5969 (segmented) path produces
/// exactly the same `OverheadModel` and `ContextSwitchPlan` cycle numbers
/// as before the platform refactor — the paper's Table 1, bit for bit.
#[test]
fn fr5969_numbers_survive_the_platform_refactor() {
    let fr5969 = Msp430Fr5969.spec();
    let fr5994 = Msp430Fr5994.spec();
    assert!(matches!(
        fr5969.mpu,
        MpuModel::Segmented {
            main_segments: 3,
            ..
        }
    ));
    assert!(matches!(&fr5994.mpu, MpuModel::Region(c) if c.regions == 8));

    // The paper's Table 1 — (method, absolute mem access, absolute switch).
    let table1 = [
        (IsolationMethod::NoIsolation, 23, 90),
        (IsolationMethod::FeatureLimited, 41, 90),
        (IsolationMethod::Mpu, 29, 142),
        (IsolationMethod::SoftwareOnly, 32, 98),
    ];
    for (method, mem, switch) in table1 {
        // Platform-independent constructor (the pre-refactor API)…
        let legacy = OverheadModel::for_method(method);
        assert_eq!(legacy.absolute_memory_access_cycles(), mem, "{method}");
        assert_eq!(legacy.absolute_context_switch_cycles(), switch, "{method}");
        // …and the platform-parameterised path agree exactly on the FR5969.
        let on_fr5969 = OverheadModel::for_platform(method, &fr5969);
        assert_eq!(legacy, on_fr5969, "{method}: FR5969 model drifted");

        // Context-switch plans: same steps, same cycles, both directions.
        for direction in [SwitchDirection::AppToOs, SwitchDirection::OsToApp] {
            for pointer_args in [0, 2] {
                let legacy = ContextSwitchPlan::new(method, direction, pointer_args);
                let platformed =
                    ContextSwitchPlan::new_for(&fr5969, method, direction, pointer_args);
                assert_eq!(legacy, platformed, "{method} {direction:?}");
                assert_eq!(legacy.cycles(), platformed.cycles());
            }
        }
        assert_eq!(
            ContextSwitchPlan::round_trip_cycles(method),
            ContextSwitchPlan::round_trip_cycles_for(&fr5969, method),
            "{method}: round trip drifted"
        );
    }

    // The region platform instantiates the *other* MPU model and makes the
    // paper's trade-off differently: hardware bounds both sides (no
    // per-access overhead under the MPU method) at a higher switch cost.
    let mpu_94 = OverheadModel::for_platform(IsolationMethod::Mpu, &fr5994);
    assert_eq!(
        mpu_94.per_memory_access, 0,
        "region MPU needs no per-access checks"
    );
    assert!(
        mpu_94.per_context_switch
            > OverheadModel::for_platform(IsolationMethod::Mpu, &fr5969).per_context_switch,
        "region reprogramming costs more per switch"
    );
}

/// The same AmuletC application computes identical results on every
/// built-in platform under every method that can compile it, and the
/// firmware carries the register shape its platform's MPU expects.
#[test]
fn apps_run_identically_on_every_builtin_platform() {
    let src = r#"
        int fib[16];
        void main(void) { }
        int compute(int n) {
            fib[0] = 0;
            fib[1] = 1;
            for (int i = 2; i < 16; i++) { fib[i] = fib[i - 1] + fib[i - 2]; }
            if (n >= 16) { n = 15; }
            return fib[n];
        }
    "#;
    for platform in builtin_platforms() {
        for method in IsolationMethod::ALL {
            let out = Aft::for_platform(method, &platform)
                .add_app(AppSource::new("Fib", src, &["main", "compute"]))
                .build()
                .unwrap_or_else(|e| panic!("{}: {method}: {e}", platform.name));
            match &out.firmware.apps[0].mpu_config {
                MpuConfig::Segmented(_) if !platform.mpu.is_region_based() => {}
                MpuConfig::Pmp(p) if platform.mpu.is_napot() => {
                    assert!(p.user_mode, "{}: app config enforces", platform.name)
                }
                MpuConfig::Region(_)
                    if platform.mpu.is_region_based() && !platform.mpu.is_napot() => {}
                config => panic!(
                    "{}: firmware carries the wrong register shape: {config:?}",
                    platform.name
                ),
            }
            let mut os = AmuletOs::new(out.firmware);
            os.boot();
            let (outcome, _) = os.call_handler(0, "compute", 10);
            assert_eq!(
                outcome,
                DeliveryOutcome::Completed,
                "{}: {method}",
                platform.name
            );
            assert_eq!(
                os.device.cpu.reg(amulet_iso::mcu::isa::Reg::R14),
                55,
                "{}: {method}: fib(10)",
                platform.name
            );
        }
    }
}

/// The isolation guarantee holds on the region platform with *hardware*
/// catching what the FR5969 needs compiler-inserted checks for: wild
/// pointers below the app, above the app, and into the OS stack in SRAM
/// all fault as MPU violations (the compiler inserts no data-pointer
/// checks there), and under No Isolation the same writes land silently.
#[test]
fn region_mpu_hardware_replaces_the_software_lower_bound_check() {
    let wild = r#"
        void main(void) { }
        int poke(int where) {
            int *p;
            p = where;
            *p = 99;
            return 1;
        }
    "#;
    let fr5994 = Msp430Fr5994.spec();
    let build = || {
        Aft::for_platform(IsolationMethod::Mpu, &fr5994)
            .add_app(AppSource::new("Wild", wild, &["main", "poke"]))
            .build()
            .unwrap()
    };
    let out = build();
    // Keys follow codegen's `note_check` strings; guard against key drift
    // by asserting the FR5969 build of the same app *does* carry the check.
    let fr5969_build = Aft::new(IsolationMethod::Mpu)
        .add_app(AppSource::new("Wild", wild, &["main", "poke"]))
        .build()
        .unwrap();
    let lower_checks = |report: &amulet_iso::aft::aft::BuildReport| {
        *report.apps[0]
            .inserted_checks
            .get("data pointer lower bound")
            .unwrap_or(&0)
    };
    assert!(
        lower_checks(&fr5969_build.report) > 0,
        "FR5969 build must carry data-pointer lower-bound checks (key drift?)"
    );
    assert_eq!(
        lower_checks(&out.report),
        0,
        "region platform compiles without data-pointer lower-bound checks"
    );
    let os_stack = out.memory_map.os_stack.end - 2;
    let os_data = out.memory_map.os_data.start;
    let above = out.memory_map.platform.fram.end - 0x80;

    for target in [os_data, os_stack, above] {
        let mut os = AmuletOs::new(build().firmware);
        os.boot();
        let (outcome, _) = os.call_handler(0, "poke", target as u16);
        assert!(
            matches!(
                outcome,
                DeliveryOutcome::Faulted(amulet_iso::core::fault::FaultClass::MpuViolation)
            ),
            "poke({target:#06x}) must fault in hardware, got {outcome:?}"
        );
    }

    // Baseline: the same write under No Isolation silently corrupts memory.
    let out = Aft::for_platform(IsolationMethod::NoIsolation, &fr5994)
        .add_app(AppSource::new("Wild", wild, &["main", "poke"]))
        .build()
        .unwrap();
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    let (outcome, _) = os.call_handler(0, "poke", os_data as u16);
    assert_eq!(outcome, DeliveryOutcome::Completed);
}

/// An application cannot sabotage the region MPU itself: its register
/// block is privileged-only (Cortex-M PPB style), so the classic attack —
/// store 0 to the control register to disable checking, then scribble
/// over OS memory — faults at the first store, and OS data is untouched.
#[test]
fn region_mpu_registers_are_privileged_only() {
    // 0x05B0 is RMPU_CTL; a store of 0 would disable region checking.
    let saboteur = r#"
        void main(void) { }
        int sabotage(int target) {
            int *p;
            p = 0x05B0;
            *p = 0;
            p = target;
            *p = 99;
            return 1;
        }
    "#;
    let out = Aft::for_platform(IsolationMethod::Mpu, &Msp430Fr5994.spec())
        .add_app(AppSource::new("Saboteur", saboteur, &["main", "sabotage"]))
        .build()
        .unwrap();
    let os_data = out.memory_map.os_data.start;
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    let before = os.device.bus.read_raw(os_data, 2);
    let (outcome, _) = os.call_handler(0, "sabotage", os_data as u16);
    assert!(
        matches!(outcome, DeliveryOutcome::Faulted(_)),
        "store to RMPU_CTL must fault, got {outcome:?}"
    );
    assert_eq!(
        os.device.bus.read_raw(os_data, 2),
        before,
        "OS data must be untouched after the attempted sabotage"
    );
    // The MPU is still enabled and still blocking.
    assert!(os.device.bus.region_mpu.enabled);
}

/// DESIGN §6 regression ("unpoliced region-MPU peripheral space"): on
/// profiles whose MPU jurisdiction covers peripheral space (`cortex-m33`,
/// `riscv-pmp`), a wild application write aimed at a peripheral register —
/// including the timer block and generic peripheral backing memory —
/// faults as an MPU violation in hardware, with no compiler-inserted check
/// involved.  The FR5994 profile keeps the historical behaviour: its
/// jurisdiction stops at peripherals, so the same store reaches the
/// (harmless) generic peripheral space.
#[test]
fn peripheral_jurisdiction_faults_wild_peripheral_writes() {
    let wild = r#"
        void main(void) { }
        int poke(int where) {
            int *p;
            p = where;
            *p = 99;
            return 1;
        }
    "#;
    use amulet_iso::core::platform::{CortexM33, RiscvPmp};
    for platform in [CortexM33.spec(), RiscvPmp.spec()] {
        let out = Aft::for_platform(IsolationMethod::Mpu, &platform)
            .add_app(AppSource::new("Wild", wild, &["main", "poke"]))
            .build()
            .unwrap();
        // No data-pointer software checks were inserted — hardware alone
        // polices these stores.
        assert_eq!(
            *out.report.apps[0]
                .inserted_checks
                .get("data pointer lower bound")
                .unwrap_or(&0),
            0,
            "{}",
            platform.name
        );
        // 0x0200: generic peripheral backing memory; 0x0340: timer block
        // territory; plus OS data, the OS stack in SRAM, and memory above
        // the app — every one must fault in hardware.
        let os_data = out.memory_map.os_data.start;
        let os_stack = out.memory_map.os_stack.end - 2;
        let above = out.memory_map.platform.fram.end - 0x80;
        for target in [0x0200u32, 0x0340, os_data, os_stack, above] {
            let mut os = AmuletOs::new(out.firmware.clone());
            os.boot();
            let (outcome, _) = os.call_handler(0, "poke", target as u16);
            assert!(
                matches!(
                    outcome,
                    DeliveryOutcome::Faulted(amulet_iso::core::fault::FaultClass::MpuViolation)
                ),
                "{}: poke({target:#06x}) must fault in hardware, got {outcome:?}",
                platform.name
            );
        }
    }
    // Contrast: the FR5994 profile's MPU stops at peripheral space, so the
    // same peripheral store completes (the documented §6 limitation there).
    let out = Aft::for_platform(IsolationMethod::Mpu, &Msp430Fr5994.spec())
        .add_app(AppSource::new("Wild", wild, &["main", "poke"]))
        .build()
        .unwrap();
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    let (outcome, _) = os.call_handler(0, "poke", 0x0200);
    assert_eq!(outcome, DeliveryOutcome::Completed);
}

/// An application cannot sabotage the PMP: its register block is
/// privileged (CSR-style), so storing 0 to `PMPMODE` — which would drop
/// the device back to machine mode and disable enforcement — faults at
/// the store, before the follow-up scribble over OS memory.
#[test]
fn pmp_registers_are_privileged_only() {
    // 0x05C0 is PMP_MODE; a store of 0 would disable user-mode checking.
    let saboteur = r#"
        void main(void) { }
        int sabotage(int target) {
            int *p;
            p = 0x05C0;
            *p = 0;
            p = target;
            *p = 99;
            return 1;
        }
    "#;
    use amulet_iso::core::platform::RiscvPmp;
    let out = Aft::for_platform(IsolationMethod::Mpu, &RiscvPmp.spec())
        .add_app(AppSource::new("Saboteur", saboteur, &["main", "sabotage"]))
        .build()
        .unwrap();
    let os_data = out.memory_map.os_data.start;
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    let before = os.device.bus.read_raw(os_data, 2);
    let (outcome, _) = os.call_handler(0, "sabotage", os_data as u16);
    assert!(
        matches!(outcome, DeliveryOutcome::Faulted(_)),
        "store to PMP_MODE must fault, got {outcome:?}"
    );
    assert_eq!(os.device.bus.read_raw(os_data, 2), before);
    // The fault handler restored the machine-mode (OS) configuration.
    assert!(!os.device.bus.pmp.user_mode);
}

/// Peripheral-jurisdiction backends drop the function-pointer software
/// check too (`CheckPolicy::for_method_on`): a corrupted code pointer
/// cannot escape into unpoliced peripheral space there.  The FR5994
/// profile — whose jurisdiction stops at peripherals — keeps it.
#[test]
fn peripheral_jurisdiction_drops_function_pointer_checks() {
    let indirect = r#"
        int twice(int x) { return x + x; }
        void main(void) {
            fnptr f;
            f = &twice;
            f(3);
        }
    "#;
    use amulet_iso::core::platform::{CortexM33, RiscvPmp};
    let fp_lower_checks = |platform: &amulet_iso::core::layout::PlatformSpec| {
        let out = Aft::for_platform(IsolationMethod::Mpu, platform)
            .add_app(AppSource::new("Indirect", indirect, &["main"]))
            .build()
            .unwrap();
        *out.report.apps[0]
            .inserted_checks
            .get("function pointer lower bound")
            .unwrap_or(&0)
    };
    assert!(fp_lower_checks(&Msp430Fr5994.spec()) > 0, "FR5994 keeps it");
    assert_eq!(fp_lower_checks(&CortexM33.spec()), 0);
    assert_eq!(fp_lower_checks(&RiscvPmp.spec()), 0);

    // An indirect call through a *valid* pointer still works on the
    // checkless builds.
    for platform in [CortexM33.spec(), RiscvPmp.spec()] {
        let out = Aft::for_platform(IsolationMethod::Mpu, &platform)
            .add_app(AppSource::new("Indirect", indirect, &["main"]))
            .build()
            .unwrap();
        let mut os = AmuletOs::new(out.firmware);
        os.boot();
        assert_eq!(os.faults.records.len(), 0, "{}", platform.name);
    }
}

/// What makes dropping the function-pointer check *sound*: on the
/// full-jurisdiction profiles a corrupted code pointer aimed at the boot
/// ROM (or anywhere else outside the app's execute-only region) faults in
/// hardware at the fetch — there is no unpoliced memory left to escape
/// into.  On the FR5994 profile the same fetch would be architecturally
/// permitted, which is exactly why that profile keeps the software check.
#[test]
fn corrupted_function_pointer_into_boot_rom_faults_in_hardware() {
    let corrupt = r#"
        void main(void) { }
        int jump(int target) {
            fnptr f;
            f = target;
            f(1);
            return 0;
        }
    "#;
    use amulet_iso::core::platform::{CortexM33, RiscvPmp};
    for platform in [CortexM33.spec(), RiscvPmp.spec()] {
        let out = Aft::for_platform(IsolationMethod::Mpu, &platform)
            .add_app(AppSource::new("Corrupt", corrupt, &["main", "jump"]))
            .build()
            .unwrap();
        let mut os = AmuletOs::new(out.firmware);
        os.boot();
        // 0x1200 is inside the boot ROM — outside every app region, and
        // (on these profiles) inside the MPU's jurisdiction.
        let (outcome, _) = os.call_handler(0, "jump", 0x1200);
        assert!(
            matches!(
                outcome,
                DeliveryOutcome::Faulted(amulet_iso::core::fault::FaultClass::MpuViolation)
            ),
            "{}: indirect call into the boot ROM must fault in hardware, got {outcome:?}",
            platform.name
        );
    }
}

/// Energy models derive from each platform's own electrical parameters —
/// no name-keyed fallback.
#[test]
fn energy_models_follow_the_platform_spec() {
    use amulet_iso::core::energy::EnergyModel;
    let e69 = EnergyModel::for_platform(&Msp430Fr5969.spec());
    let e94 = EnergyModel::for_platform(&Msp430Fr5994.spec());
    assert_eq!(e69, EnergyModel::msp430fr5969());
    assert!(
        e94.active_current_a > e69.active_current_a,
        "FR5994 draws more current"
    );
    assert_eq!(e69.frequency_hz, e94.frequency_hz);
}

/// Cross-app isolation on the region platform: one app cannot read another
/// app's data, in either direction — the region MPU covers both sides of
/// the attacker.
#[test]
fn region_platform_isolates_apps_in_both_directions() {
    let victim = r#"
        int secret = 4242;
        void main(void) { }
        int get(int x) { return secret; }
    "#;
    let attacker = r#"
        void main(void) { }
        int steal(int addr) { int *p; p = addr; return *p; }
    "#;
    let build = |attacker_first: bool| {
        let mut aft = Aft::for_platform(IsolationMethod::Mpu, &Msp430Fr5994.spec());
        if attacker_first {
            aft = aft
                .add_app(AppSource::new("Attacker", attacker, &["main", "steal"]))
                .add_app(AppSource::new("Victim", victim, &["main", "get"]));
        } else {
            aft = aft
                .add_app(AppSource::new("Victim", victim, &["main", "get"]))
                .add_app(AppSource::new("Attacker", attacker, &["main", "steal"]));
        }
        aft.build().unwrap()
    };
    for attacker_first in [true, false] {
        let out = build(attacker_first);
        let victim_idx = out
            .firmware
            .apps
            .iter()
            .position(|a| a.name == "Victim")
            .unwrap();
        let attacker_idx = 1 - victim_idx;
        let secret_addr = out.firmware.apps[victim_idx].placement.data.start as u16;
        let mut os = AmuletOs::new(out.firmware);
        os.boot();
        let (outcome, _) = os.call_handler(attacker_idx, "steal", secret_addr);
        assert!(
            matches!(outcome, DeliveryOutcome::Faulted(_)),
            "attacker {} victim: steal must fault, got {outcome:?}",
            if attacker_first { "below" } else { "above" }
        );
    }
}
