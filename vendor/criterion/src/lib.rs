//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, vendored because this build environment has no access to
//! crates.io.
//!
//! It supports the subset the workspace benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` and `Bencher::iter` — and reports the mean wall-clock
//! time per iteration instead of criterion's full statistics.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The benchmark context handed to every registered bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group `{name}`");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let total: f64 = bencher.samples.iter().sum();
        let iters = bencher.samples.len().max(1) as f64;
        println!(
            "  {id}: {:.3} ms/iter over {} samples",
            total / iters * 1e3,
            bencher.samples.len()
        );
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one execution of `f` (criterion would run a calibrated batch).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let value = f();
        self.samples.push(start.elapsed().as_secs_f64());
        drop(value);
    }
}

/// Prevents the optimizer from deleting a value (re-export of the std
/// hint, for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
