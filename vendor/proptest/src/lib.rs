//! A minimal, dependency-free, deterministic stand-in for the `proptest`
//! crate, vendored because this build environment has no access to
//! crates.io.
//!
//! It implements exactly the API surface the workspace's property tests
//! use — `proptest!`, `prop_assert*`, `prop_oneof!`, range/tuple/vec
//! strategies, `Just`, `any`, `prop_map`, `prop_flat_map` and
//! `proptest::collection::vec` — with a seeded xorshift generator instead
//! of real shrinking-capable value trees.  Failures therefore reproduce
//! deterministically across runs, but are not shrunk.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: an exact length or a range of
    /// lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs `proptest!`-style property functions: each `arg in strategy`
/// binding is sampled `cases` times from a deterministic generator and the
/// body is executed for every sampled tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@configured $cfg; $($rest)*);
    };
    (@configured $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body #[allow(unreachable_code)] Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@configured $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `prop_assert!` — like `assert!` but reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!` — equality assertion through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `prop_assert_ne!` — inequality assertion through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// `prop_oneof!` — uniformly picks one of the given strategies per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
