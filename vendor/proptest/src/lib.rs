//! A minimal, dependency-free, deterministic stand-in for the `proptest`
//! crate, vendored because this build environment has no access to
//! crates.io.
//!
//! It implements exactly the API surface the workspace's property tests
//! use — `proptest!`, `prop_assert*`, `prop_oneof!`, range/tuple/vec
//! strategies, `Just`, `any`, `prop_map`, `prop_flat_map` and
//! `proptest::collection::vec` — with a seeded xorshift generator instead
//! of real shrinking-capable value trees.  Failures reproduce
//! deterministically across runs and are **shrunk** before reporting:
//! integer ranges shrink towards their lower bound, vectors drop
//! elements, tuples shrink component-wise, `prop_map` shrinks its
//! recorded pre-image and re-applies the mapping, `prop_oneof!`
//! remembers which branch produced the value and delegates shrinking to
//! it, and `prop_flat_map` records its pre-images at sample time so both
//! of its stages shrink — the derived strategy minimises the value in
//! place, and shrunk pre-images are re-flattened through a deterministic
//! draw.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: an exact length or a range of
    /// lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> std::fmt::Debug for VecStrategy<S> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("VecStrategy")
                .field("size", &self.size)
                .finish_non_exhaustive()
        }
    }

    /// Creates a strategy producing vectors of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Structural candidates first (shorter is simpler), never
            // below the strategy's minimum length; then element-wise
            // shrinking, one position at a time (the greedy runner loop
            // composes repeated applications into a minimum).
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let len = value.len();
            let min = self.size.min;
            // Deduplicated prefix lengths: each duplicate would re-run the
            // whole property body on an identical value.
            let mut keep_lens = [min, len / 2, len.saturating_sub(1)];
            keep_lens.sort_unstable();
            let mut prev = usize::MAX;
            for &n in &keep_lens {
                if n >= min && n < len && n != prev {
                    out.push(value[..n].to_vec());
                    prev = n;
                }
            }
            if len > min && len > 1 {
                // Dropping from the front reaches counterexamples whose
                // trigger sits at the tail.
                out.push(value[len - min.max(len / 2).max(1)..].to_vec());
            }
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs `proptest!`-style property functions: each `arg in strategy`
/// binding is sampled `cases` times from a deterministic generator and the
/// body is executed for every sampled tuple.
///
/// When a case fails (via the `prop_assert*` macros), the runner
/// **shrinks** it before reporting: each argument's strategy proposes
/// simpler candidates ([`strategy::Strategy::shrink`]), the body is
/// re-run on clones, and any candidate that still fails is greedily
/// adopted, bounded by
/// [`ProptestConfig::max_shrink_iters`](test_runner::ProptestConfig).
/// The panic message carries the *minimised* arguments.  (Bodies that
/// panic directly instead of using `prop_assert*` abort on the original
/// sample, unshrunk.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@configured $cfg; $($rest)*);
    };
    (@configured $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // One strategy tuple serves both re-checking and shrinking;
                // the argument bundle shrinks through the tuple strategy's
                // component-wise `shrink`.
                let __prop_strats = ($(($strat),)*);
                #[allow(unused_variables)]
                let __prop_check = $crate::test_runner::check_fn(&__prop_strats, |__prop_args| {
                    // The body sees owned values, exactly as when they
                    // were sampled inline; the clone keeps the bundle for
                    // further shrinking.
                    let ($($arg,)*) = ::std::clone::Clone::clone(__prop_args);
                    (move || { $body #[allow(unreachable_code)] Ok(()) })()
                });
                for case in 0..config.cases {
                    // Sampling goes through the *same* strategy tuple the
                    // shrink loop consults: combinators that shrink by
                    // memory (`prop_map` records pre-images while
                    // sampling) only work when one instance serves both.
                    // The tuple strategy samples its components in
                    // declaration order, so the RNG stream is exactly the
                    // historical per-argument stream.
                    let mut __prop_args =
                        $crate::strategy::Strategy::sample(&__prop_strats, &mut rng);
                    if let Err(mut __prop_failure) = __prop_check(&__prop_args) {
                        // Greedy minimisation: adopt the first simpler
                        // candidate bundle that still fails, repeat to a
                        // fixed point (or the iteration bound).
                        let mut __prop_attempts: u32 = 0;
                        let mut __prop_improved = true;
                        while __prop_improved && __prop_attempts < config.max_shrink_iters {
                            __prop_improved = false;
                            for __prop_cand in
                                $crate::strategy::Strategy::shrink(&__prop_strats, &__prop_args)
                            {
                                __prop_attempts += 1;
                                match __prop_check(&__prop_cand) {
                                    Err(e) => {
                                        __prop_failure = e;
                                        __prop_args = __prop_cand;
                                        __prop_improved = true;
                                        break;
                                    }
                                    Ok(()) => {}
                                }
                                if __prop_attempts >= config.max_shrink_iters {
                                    break;
                                }
                            }
                        }
                        panic!(
                            "property `{}` failed on case {} ({} shrink attempts): {}\nminimal arguments: {:#?}",
                            stringify!($name),
                            case,
                            __prop_attempts,
                            __prop_failure,
                            __prop_args,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@configured $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// `prop_assert!` — like `assert!` but reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!` — equality assertion through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `prop_assert_ne!` — inequality assertion through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// `prop_oneof!` — uniformly picks one of the given strategies per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod shrink_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn fails_above_ten(x in 0u32..1000) {
            prop_assert!(x <= 10, "x = {} is too big", x);
        }

        fn fails_when_any_element_is_big(
            v in crate::collection::vec(0u32..100, 0..20),
        ) {
            prop_assert!(v.iter().all(|&x| x < 50), "big element in {:?}", v);
        }

        fn fails_on_big_pair_products(pair in (1u32..40, 1u32..40)) {
            prop_assert!(pair.0 * pair.1 < 100, "{} * {} too big", pair.0, pair.1);
        }

        fn fails_on_big_doubles(x in (0u32..1000).prop_map(|x| x * 2)) {
            prop_assert!(x <= 80, "x = {} too big", x);
        }

        fn fails_on_oneof_range_branch(x in prop_oneof![Just(5u32), 100u32..1000]) {
            prop_assert!(x < 90u32, "x = {} too big", x);
        }

        fn fails_on_oneof_mapped_branch(
            x in prop_oneof![(0u32..500).prop_map(|v| v * 3), Just(1u32)],
        ) {
            prop_assert!(x <= 30u32, "x = {} too big", x);
        }

        fn fails_on_flat_mapped_offsets(
            x in (0u32..100).prop_flat_map(|base| base..base + 100),
        ) {
            prop_assert!(x <= 10, "x = {} too big", x);
        }
    }

    fn failure_message(f: fn()) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property must fail");
        err.downcast_ref::<String>()
            .expect("panic carries a String")
            .clone()
    }

    #[test]
    fn integer_counterexamples_minimise_to_the_boundary() {
        let msg = failure_message(fails_above_ten);
        // 11 is the smallest value in 0..1000 that violates x <= 10.
        assert!(
            msg.contains("minimal arguments: (\n    11,\n)"),
            "not minimised: {msg}"
        );
    }

    #[test]
    fn vec_counterexamples_minimise_to_one_boundary_element() {
        let msg = failure_message(fails_when_any_element_is_big);
        // The minimal counterexample is a single element of exactly 50.
        assert!(
            msg.contains("[\n        50,\n    ]"),
            "not minimised: {msg}"
        );
    }

    #[test]
    fn mapped_counterexamples_shrink_through_the_pre_image() {
        let msg = failure_message(fails_on_big_doubles);
        // The mapping x ↦ 2x is not inverted; the pre-image is recorded
        // at sample time and shrunk instead.  The smallest pre-image in
        // 0..1000 whose double violates x <= 80 is 41, so the minimal
        // reported (mapped) argument is 82.
        assert!(
            msg.contains("minimal arguments: (\n    82,\n)"),
            "not minimised through prop_map: {msg}"
        );
    }

    #[test]
    fn oneof_counterexamples_shrink_through_the_producing_branch() {
        // Regression: the union used to erase which branch produced a
        // value, so `prop_oneof!` counterexamples were reported raw —
        // here, an arbitrary draw from 100..1000.  With branch memory
        // the union delegates to the producing range, which minimises to
        // its floor; only the range branch can violate `x < 90`, so the
        // pinned minimum is exactly 100.
        let msg = failure_message(fails_on_oneof_range_branch);
        assert!(
            msg.contains("minimal arguments: (\n    100,\n)"),
            "not minimised through prop_oneof: {msg}"
        );
    }

    #[test]
    fn oneof_delegation_composes_with_mapped_branch_memory() {
        // The producing branch is itself a memory-based shrinker
        // (`prop_map`); delegation must reach it.  The smallest
        // pre-image in 0..500 whose triple violates `x <= 30` is 11, so
        // the minimal reported (mapped) argument is 33.
        let msg = failure_message(fails_on_oneof_mapped_branch);
        assert!(
            msg.contains("minimal arguments: (\n    33,\n)"),
            "not minimised through the union's mapped branch: {msg}"
        );
    }

    #[test]
    fn flat_mapped_counterexamples_shrink_through_both_stages() {
        // Regression: `prop_flat_map` used to be the one combinator with
        // no shrinking at all (its second sampling stage erased the
        // intermediate strategy), so counterexamples were reported raw.
        // With pre-image memory both stages minimise: the derived range
        // walks the value down to its floor, re-flattened shrunk
        // pre-images drop the floor itself, and the greedy loop composes
        // the two into the smallest value violating `x <= 10` — exactly
        // 11.
        let msg = failure_message(fails_on_flat_mapped_offsets);
        assert!(
            msg.contains("minimal arguments: (\n    11,\n)"),
            "not minimised through prop_flat_map: {msg}"
        );
    }

    #[test]
    fn tuple_components_shrink_jointly() {
        let msg = failure_message(fails_on_big_pair_products);
        // Greedy component-wise shrinking lands on a product just at or
        // above the bound — both components strictly below the raw draw
        // ceiling and the product within one halving of 100.
        let body = msg
            .split("minimal arguments:")
            .nth(1)
            .expect("message names the minimal arguments");
        let nums: Vec<u32> = body
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        let (a, b) = (nums[0], nums[1]);
        assert!(a * b >= 100, "still a counterexample: {a} * {b}");
        assert!(a * b < 200, "near-minimal: {a} * {b} ({msg})");
    }
}
