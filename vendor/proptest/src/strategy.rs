//! Value-generation strategies: a pared-down, deterministic version of
//! proptest's `Strategy` trait and its combinators.

use crate::test_runner::TestRng;

/// A source of pseudo-random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Samples a value, feeds it to `f`, and samples from the strategy `f`
    /// returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice between several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// `any::<T>()` — the full range of a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $ty
                }
            }
        )*
    };
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $ty
                }
            }
        )*
    };
}
signed_range_strategies!(i8, i16, i32, i64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}
