//! Value-generation strategies: a pared-down, deterministic version of
//! proptest's `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::cell::RefCell;

/// A source of pseudo-random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing `value`, most
    /// aggressive first; the runner re-tests each and greedily adopts any
    /// that still fails, so repeated application minimises the
    /// counterexample.  The default proposes nothing (no shrinking) —
    /// integer ranges shrink towards their lower bound, `any` integers
    /// towards zero, vectors drop elements and shrink the survivors,
    /// `prop_map` shrinks its *pre-image* and re-applies the mapping
    /// (see [`Map`]), `prop_oneof!` delegates to the branch that
    /// produced the value (see [`Union`]), and `prop_flat_map` shrinks
    /// both of its stages through recorded pre-images (see [`FlatMap`]).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps every sampled value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f,
            seen: RefCell::new(Vec::new()),
        }
    }

    /// Samples a value, feeds it to `f`, and samples from the strategy `f`
    /// returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F, S::Value>
    where
        Self: Sized,
    {
        FlatMap {
            inner: self,
            f,
            seen: RefCell::new(Vec::new()),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
///
/// A mapping is not invertible in general, so `Map` shrinks by **memory**
/// instead of inversion: every pre-image it samples — and every shrink
/// candidate it proposes — is recorded, and `shrink(value)` looks the
/// failing value's pre-image up by re-applying `f` (newest entry first,
/// so the candidate the greedy runner just adopted is found immediately),
/// shrinks that pre-image through the inner strategy, and maps the
/// candidates forward.  Candidates that map back to the current value are
/// dropped (progress must be strict, or the runner would spin on
/// many-to-one mappings).  The memory is cleared on every fresh sample,
/// so it holds one test case's lineage, bounded by the runner's
/// `max_shrink_iters`.
pub struct Map<S: Strategy, F> {
    inner: S,
    f: F,
    /// Pre-images that may have produced the current failing value.
    seen: RefCell<Vec<S::Value>>,
}

impl<S: Strategy, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Neither the inner strategy nor the mapping closure is
        // printable in general; the type name is what matters in a
        // failure report.
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S: Strategy, T: PartialEq, F: Fn(S::Value) -> T> Strategy for Map<S, F>
where
    S::Value: Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pre = self.inner.sample(rng);
        let mut seen = self.seen.borrow_mut();
        seen.clear();
        seen.push(pre.clone());
        drop(seen);
        (self.f)(pre)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        let pre = self
            .seen
            .borrow()
            .iter()
            .rev()
            .find(|p| (self.f)((*p).clone()) == *value)
            .cloned();
        let Some(pre) = pre else { return Vec::new() };
        let mut out = Vec::new();
        for cand in self.inner.shrink(&pre) {
            let mapped = (self.f)(cand.clone());
            if mapped == *value {
                continue;
            }
            self.seen.borrow_mut().push(cand);
            out.push(mapped);
        }
        out
    }
}

/// See [`Strategy::prop_flat_map`].
///
/// The second sampling stage erases the intermediate strategy, so — like
/// [`Map`] — `FlatMap` shrinks by **memory**: `sample` records the
/// pre-image next to the value it flat-mapped into, and `shrink(value)`
/// recovers the failing value's pre-image from that record, then
/// proposes two kinds of candidate.  First the *derived* strategy
/// (`f(pre-image)`, re-derived — `f` must be pure, which the `Fn` bound
/// already demands for re-sampling) shrinks the value in place: the
/// second stage minimises while the pre-image stands still.  Then each
/// inner shrink of the pre-image is *re-flattened* through a
/// deterministic sample of its own derived strategy: the first stage
/// minimises, at the cost of re-drawing the second.  Every proposed
/// candidate is recorded next to the pre-image that produced it, so the
/// greedy runner can keep shrinking whichever candidate it adopts.  The
/// memory is cleared on every fresh sample, so it holds one test case's
/// lineage, bounded by the runner's `max_shrink_iters`.
pub struct FlatMap<S: Strategy, F, T> {
    inner: S,
    f: F,
    /// `(pre-image, flat-mapped value)` pairs that may have produced the
    /// current failing value.
    seen: RefCell<Vec<(S::Value, T)>>,
}

impl<S: Strategy, F, T> std::fmt::Debug for FlatMap<S, F, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatMap").finish_non_exhaustive()
    }
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F, S2::Value>
where
    S::Value: Clone,
    S2::Value: Clone + PartialEq,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let pre = self.inner.sample(rng);
        let value = (self.f)(pre.clone()).sample(rng);
        let mut seen = self.seen.borrow_mut();
        seen.clear();
        seen.push((pre, value.clone()));
        value
    }
    fn shrink(&self, value: &S2::Value) -> Vec<S2::Value> {
        let pre = self
            .seen
            .borrow()
            .iter()
            .rev()
            .find(|(_, v)| v == value)
            .map(|(p, _)| p.clone());
        let Some(pre) = pre else { return Vec::new() };
        let mut out = Vec::new();
        // Second stage: the derived strategy minimises the value itself,
        // keeping the pre-image.
        for cand in (self.f)(pre.clone()).shrink(value) {
            if cand == *value {
                continue;
            }
            self.seen.borrow_mut().push((pre.clone(), cand.clone()));
            out.push(cand);
        }
        // First stage: shrink the pre-image, then re-flatten each
        // candidate through a deterministic draw so the proposal is
        // reproducible run to run.
        for pre_cand in self.inner.shrink(&pre) {
            let mut rng = TestRng::deterministic("prop_flat_map::reflatten");
            let cand = (self.f)(pre_cand.clone()).sample(&mut rng);
            if cand == *value {
                continue;
            }
            self.seen.borrow_mut().push((pre_cand, cand.clone()));
            out.push(cand);
        }
        out
    }
}

/// Uniform choice between several boxed strategies (`prop_oneof!`).
///
/// The branch is erased from the sampled value, so — like [`Map`] — the
/// union shrinks by **memory**: `sample` records which branch produced
/// the value, and `shrink` delegates to that branch's own shrinker.
/// Every candidate a branch proposes is (by the shrink contract) a value
/// that branch could have produced, so delegating again on an adopted
/// candidate stays on the same branch and the recorded index never goes
/// stale mid-minimisation.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
    /// Index of the branch that produced the most recent sample.
    last_branch: RefCell<Option<usize>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union {
            options,
            last_branch: RefCell::new(None),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        *self.last_branch.borrow_mut() = Some(idx);
        self.options[idx].sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        match *self.last_branch.borrow() {
            Some(idx) => self.options[idx].shrink(value),
            None => Vec::new(),
        }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .field("last_branch", &self.last_branch)
            .finish()
    }
}

/// `any::<T>()` — the full range of a primitive type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> std::fmt::Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnyStrategy<{}>", std::any::type_name::<T>())
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::arbitrary_shrink(value)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws a value from the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Strictly-simpler candidates for `value` (see [`Strategy::shrink`]).
    fn arbitrary_shrink(_value: &Self) -> Vec<Self>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
            fn arbitrary_shrink(value: &$ty) -> Vec<$ty> {
                // Towards zero: zero itself, the halfway point, one step.
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        })*
    };
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn arbitrary_shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Candidates for shrinking `v` towards the range floor `lo`: the floor
/// itself, the halfway point, one step down.  Shared by every integer
/// range (values are lifted to `i128` so every workspace integer fits).
fn shrink_towards(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let half = lo + (v - lo) / 2;
        if half != lo && half != v {
            out.push(half);
        }
        if v - 1 != lo && v - 1 != half {
            out.push(v - 1);
        }
    }
    out
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_towards(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_towards(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
        )*
    };
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    shrink_towards(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
        )*
    };
}
signed_range_strategies!(i8, i16, i32, i64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component shrinks at a time, the others cloned;
                    // the runner's greedy loop composes positions.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*
    };
}
tuple_strategies! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

/// The empty strategy tuple (a property with no `in` bindings).
impl Strategy for () {
    type Value = ();
    fn sample(&self, _rng: &mut TestRng) {}
}

impl<S: Strategy> Strategy for Vec<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        // Fixed-structure vector of strategies: shrink position-wise.
        let mut out = Vec::new();
        for (i, (s, v)) in self.iter().zip(value).enumerate() {
            for cand in s.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
