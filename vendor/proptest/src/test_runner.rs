//! The deterministic test runner: configuration, RNG and failure type.

use std::fmt;

/// How many cases a `proptest!` block runs per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property function.
    pub cases: u32,
    /// Upper bound on shrink candidates tried after a failing case (the
    /// greedy minimisation loop stops here even if still improving).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 512,
        }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Pins a checking closure's argument type to a strategy's value type —
/// a type-inference helper for the `proptest!` runner (closures with
/// unannotated reference parameters would otherwise commit to the wrong
/// type through deref coercions in the property body).
pub fn check_fn<S, F>(_strategy: &S, f: F) -> F
where
    S: crate::strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// A small xorshift64* generator, seeded from the property name so every
/// property gets a distinct but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the property name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed odd constant so an empty
        // name still produces a non-zero state.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("p");
        let mut b = TestRng::deterministic("p");
        let mut c = TestRng::deterministic("q");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
